#include "constraints/region_stats.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/rng.h"
#include "test_util.h"

namespace emp {
namespace {

class RegionStatsTest : public ::testing::Test {
 protected:
  RegionStatsTest()
      : areas_(test::PathAreaSet({5, 1, 9, 3, 7, 2, 8, 4, 6, 10})) {}

  BoundConstraints Bind(std::vector<Constraint> cs) {
    auto bc = BoundConstraints::Create(&areas_, std::move(cs));
    EXPECT_TRUE(bc.ok()) << bc.status().ToString();
    return std::move(bc).value();
  }

  AreaSet areas_;
};

TEST_F(RegionStatsTest, EmptyRegionSatisfiesNothing) {
  BoundConstraints bc = Bind({Constraint::Sum("s", 0, 100)});
  RegionStats stats(&bc);
  EXPECT_EQ(stats.count(), 0);
  EXPECT_FALSE(stats.SatisfiesAll());
  EXPECT_FALSE(stats.Satisfies(0));
}

TEST_F(RegionStatsTest, AllAggregatesTrackAdds) {
  BoundConstraints bc = Bind({
      Constraint::Min("s", 0, 100),
      Constraint::Max("s", 0, 100),
      Constraint::Avg("s", 0, 100),
      Constraint::Sum("s", 0, 100),
      Constraint::Count(0, 100),
  });
  RegionStats stats(&bc);
  stats.Add(0);  // s=5
  stats.Add(2);  // s=9
  stats.Add(3);  // s=3
  EXPECT_DOUBLE_EQ(stats.AggregateValue(0), 3);   // MIN
  EXPECT_DOUBLE_EQ(stats.AggregateValue(1), 9);   // MAX
  EXPECT_NEAR(stats.AggregateValue(2), 17.0 / 3, 1e-12);  // AVG
  EXPECT_DOUBLE_EQ(stats.AggregateValue(3), 17);  // SUM
  EXPECT_DOUBLE_EQ(stats.AggregateValue(4), 3);   // COUNT
}

TEST_F(RegionStatsTest, RemoveRestoresPreviousState) {
  BoundConstraints bc = Bind({
      Constraint::Min("s", 0, 100),
      Constraint::Max("s", 0, 100),
      Constraint::Sum("s", 0, 100),
  });
  RegionStats stats(&bc);
  stats.Add(0);
  stats.Add(2);
  stats.Remove(2);
  EXPECT_DOUBLE_EQ(stats.AggregateValue(0), 5);
  EXPECT_DOUBLE_EQ(stats.AggregateValue(1), 5);
  EXPECT_DOUBLE_EQ(stats.AggregateValue(2), 5);
  EXPECT_EQ(stats.count(), 1);
}

TEST_F(RegionStatsTest, MinRemovalWithDuplicates) {
  // Areas 0 (s=5) twice is impossible, but two areas can share a value:
  // use areas 0 (5) and... values are distinct in fixture, so test the
  // duplicate path via a custom area set.
  AreaSet dup = test::PathAreaSet({4, 4, 9});
  auto bc = BoundConstraints::Create(&dup, {Constraint::Min("s", 0, 100)});
  ASSERT_TRUE(bc.ok());
  RegionStats stats(&*bc);
  stats.Add(0);
  stats.Add(1);
  stats.Add(2);
  EXPECT_DOUBLE_EQ(stats.AggregateValue(0), 4);
  EXPECT_DOUBLE_EQ(stats.AggregateAfterRemove(0, 0), 4);  // other 4 remains
  stats.Remove(0);
  EXPECT_DOUBLE_EQ(stats.AggregateValue(0), 4);
  stats.Remove(1);
  EXPECT_DOUBLE_EQ(stats.AggregateValue(0), 9);
}

TEST_F(RegionStatsTest, HypotheticalAddMatchesActual) {
  BoundConstraints bc = Bind({
      Constraint::Min("s", 0, 100),
      Constraint::Max("s", 0, 100),
      Constraint::Avg("s", 0, 100),
      Constraint::Sum("s", 0, 100),
      Constraint::Count(0, 100),
  });
  RegionStats stats(&bc);
  stats.Add(1);
  stats.Add(4);
  for (int ci = 0; ci < bc.size(); ++ci) {
    double predicted = stats.AggregateAfterAdd(ci, 6);
    RegionStats copy = stats;
    copy.Add(6);
    EXPECT_DOUBLE_EQ(predicted, copy.AggregateValue(ci)) << "ci=" << ci;
  }
}

TEST_F(RegionStatsTest, HypotheticalRemoveMatchesActual) {
  BoundConstraints bc = Bind({
      Constraint::Min("s", 0, 100),
      Constraint::Max("s", 0, 100),
      Constraint::Avg("s", 0, 100),
      Constraint::Sum("s", 0, 100),
      Constraint::Count(0, 100),
  });
  RegionStats stats(&bc);
  for (int32_t a : {0, 2, 5, 7}) stats.Add(a);
  for (int32_t victim : {0, 2, 5, 7}) {
    for (int ci = 0; ci < bc.size(); ++ci) {
      double predicted = stats.AggregateAfterRemove(ci, victim);
      RegionStats copy = stats;
      copy.Remove(victim);
      EXPECT_DOUBLE_EQ(predicted, copy.AggregateValue(ci))
          << "ci=" << ci << " victim=" << victim;
    }
  }
}

TEST_F(RegionStatsTest, MergeMatchesSequentialAdds) {
  BoundConstraints bc = Bind({
      Constraint::Min("s", 0, 100),
      Constraint::Max("s", 0, 100),
      Constraint::Avg("s", 0, 100),
      Constraint::Sum("s", 0, 100),
  });
  RegionStats a(&bc);
  a.Add(0);
  a.Add(1);
  RegionStats b(&bc);
  b.Add(2);
  b.Add(3);
  // Preview must match the post-merge values.
  std::vector<double> preview(static_cast<size_t>(bc.size()));
  for (int ci = 0; ci < bc.size(); ++ci) {
    preview[static_cast<size_t>(ci)] = a.AggregateAfterMerge(ci, b);
  }
  a.Merge(b);
  for (int ci = 0; ci < bc.size(); ++ci) {
    EXPECT_DOUBLE_EQ(a.AggregateValue(ci), preview[static_cast<size_t>(ci)]);
  }
  EXPECT_EQ(a.count(), 4);
}

TEST_F(RegionStatsTest, SatisfiesRespectsBounds) {
  BoundConstraints bc = Bind({Constraint::Avg("s", 4, 6)});
  RegionStats stats(&bc);
  stats.Add(0);  // s=5 -> avg 5 OK
  EXPECT_TRUE(stats.SatisfiesAll());
  stats.Add(1);  // s=1 -> avg 3, below
  EXPECT_FALSE(stats.SatisfiesAll());
  stats.Add(2);  // s=9 -> avg 5
  EXPECT_TRUE(stats.SatisfiesAll());
}

TEST_F(RegionStatsTest, SatisfiesAllAfterRemoveRejectsEmptying) {
  BoundConstraints bc = Bind({Constraint::Sum("s", 0, 100)});
  RegionStats stats(&bc);
  stats.Add(0);
  EXPECT_FALSE(stats.SatisfiesAllAfterRemove(0));
}

TEST_F(RegionStatsTest, ClearResets) {
  BoundConstraints bc = Bind({Constraint::Min("s", 0, 100),
                              Constraint::Sum("s", 0, 100)});
  RegionStats stats(&bc);
  stats.Add(0);
  stats.Add(1);
  stats.Clear();
  EXPECT_EQ(stats.count(), 0);
  EXPECT_DOUBLE_EQ(stats.AggregateValue(1), 0.0);  // SUM resets to 0
}

// Property sweep: a long random add/remove trace must always agree with a
// from-scratch recomputation over the current member multiset.
TEST_F(RegionStatsTest, RandomTraceMatchesRecompute) {
  BoundConstraints bc = Bind({
      Constraint::Min("s", 0, 100),
      Constraint::Max("s", 0, 100),
      Constraint::Avg("s", 0, 100),
      Constraint::Sum("s", 0, 100),
      Constraint::Count(0, 100),
  });
  RegionStats stats(&bc);
  std::vector<int32_t> members;
  Rng rng(2024);
  for (int step = 0; step < 500; ++step) {
    bool add = members.empty() || rng.Bernoulli(0.55);
    if (add) {
      // Areas may repeat across time but not be concurrently duplicated.
      int32_t a = static_cast<int32_t>(rng.UniformInt(0, 9));
      if (std::find(members.begin(), members.end(), a) != members.end()) {
        continue;
      }
      members.push_back(a);
      stats.Add(a);
    } else {
      size_t idx = static_cast<size_t>(
          rng.UniformInt(0, static_cast<int64_t>(members.size()) - 1));
      stats.Remove(members[idx]);
      members.erase(members.begin() + static_cast<std::ptrdiff_t>(idx));
    }
    if (members.empty()) continue;
    // Recompute ground truth.
    double mn = 1e18;
    double mx = -1e18;
    double sum = 0;
    for (int32_t m : members) {
      double v = bc.ValueOf(0, m);
      mn = std::min(mn, v);
      mx = std::max(mx, v);
      sum += v;
    }
    EXPECT_DOUBLE_EQ(stats.AggregateValue(0), mn);
    EXPECT_DOUBLE_EQ(stats.AggregateValue(1), mx);
    EXPECT_NEAR(stats.AggregateValue(2),
                sum / static_cast<double>(members.size()), 1e-9);
    EXPECT_NEAR(stats.AggregateValue(3), sum, 1e-9);
    EXPECT_DOUBLE_EQ(stats.AggregateValue(4),
                     static_cast<double>(members.size()));
  }
}

}  // namespace
}  // namespace emp
