#include "constraints/query_parser.h"

#include <gtest/gtest.h>

namespace emp {
namespace {

TEST(QueryParserTest, LowerBoundForm) {
  auto c = ParseConstraint("SUM(TOTALPOP) >= 20000");
  ASSERT_TRUE(c.ok()) << c.status().ToString();
  EXPECT_EQ(*c, Constraint::Sum("TOTALPOP", 20000, kNoUpperBound));
}

TEST(QueryParserTest, UpperBoundForm) {
  auto c = ParseConstraint("MIN(POP16UP) <= 3000");
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(*c, Constraint::Min("POP16UP", kNoLowerBound, 3000));
}

TEST(QueryParserTest, InRangeForm) {
  auto c = ParseConstraint("AVG(EMPLOYED) IN [1500, 3500]");
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(*c, Constraint::Avg("EMPLOYED", 1500, 3500));
}

TEST(QueryParserTest, SandwichForm) {
  auto c = ParseConstraint("1500 <= AVG(EMPLOYED) <= 3500");
  ASSERT_TRUE(c.ok()) << c.status().ToString();
  EXPECT_EQ(*c, Constraint::Avg("EMPLOYED", 1500, 3500));
}

TEST(QueryParserTest, CountStar) {
  auto star = ParseConstraint("COUNT(*) IN [2, 40]");
  ASSERT_TRUE(star.ok());
  EXPECT_EQ(*star, Constraint::Count(2, 40));
  auto empty = ParseConstraint("count() >= 3");
  ASSERT_TRUE(empty.ok());
  EXPECT_EQ(empty->aggregate, Aggregate::kCount);
}

TEST(QueryParserTest, CaseInsensitiveKeywords) {
  auto c = ParseConstraint("sum(TOTALPOP) In [1, 2]");
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(c->aggregate, Aggregate::kSum);
  // Attribute case is preserved.
  EXPECT_EQ(c->attribute, "TOTALPOP");
}

TEST(QueryParserTest, KiloMegaSuffixesAndInf) {
  auto k = ParseConstraint("SUM(POP) >= 20k");
  ASSERT_TRUE(k.ok());
  EXPECT_DOUBLE_EQ(k->lower, 20000);
  auto m = ParseConstraint("SUM(POP) IN [1.5m, inf]");
  ASSERT_TRUE(m.ok());
  EXPECT_DOUBLE_EQ(m->lower, 1500000);
  EXPECT_DOUBLE_EQ(m->upper, kNoUpperBound);
  auto neg = ParseConstraint("MIN(POP) IN [-inf, 3k]");
  ASSERT_TRUE(neg.ok());
  EXPECT_DOUBLE_EQ(neg->lower, kNoLowerBound);
}

TEST(QueryParserTest, RejectsMalformedInput) {
  EXPECT_FALSE(ParseConstraint("").ok());
  EXPECT_FALSE(ParseConstraint("FOO(X) >= 1").ok());
  EXPECT_FALSE(ParseConstraint("SUM(X)").ok());
  EXPECT_FALSE(ParseConstraint("SUM(X) == 5").ok());
  EXPECT_FALSE(ParseConstraint("SUM(X) IN [5]").ok());
  EXPECT_FALSE(ParseConstraint("SUM(X) IN 5, 6").ok());
  EXPECT_FALSE(ParseConstraint("SUM() >= 5").ok());
  EXPECT_FALSE(ParseConstraint("COUNT(POP) >= 5").ok());
  EXPECT_FALSE(ParseConstraint("SUM(X >= 5").ok());
}

TEST(QueryParserTest, RejectsSemanticViolations) {
  // Inverted range fails Constraint::Validate.
  EXPECT_FALSE(ParseConstraint("SUM(X) IN [10, 5]").ok());
  // COUNT upper below 1.
  EXPECT_FALSE(ParseConstraint("COUNT(*) <= 0.5").ok());
}

TEST(QueryParserTest, MultiConstraintSeparators) {
  auto q = ParseConstraints(
      "MIN(POP16UP) <= 3000; AVG(EMPLOYED) IN [1500, 3500]\n"
      "SUM(TOTALPOP) >= 20k AND COUNT(*) <= 40");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  ASSERT_EQ(q->size(), 4u);
  EXPECT_EQ((*q)[0].aggregate, Aggregate::kMin);
  EXPECT_EQ((*q)[1].aggregate, Aggregate::kAvg);
  EXPECT_EQ((*q)[2].aggregate, Aggregate::kSum);
  EXPECT_EQ((*q)[3].aggregate, Aggregate::kCount);
}

TEST(QueryParserTest, AndInsideIdentifierNotSplit) {
  auto q = ParseConstraints("SUM(LANDAREA) >= 5");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ((*q)[0].attribute, "LANDAREA");
}

TEST(QueryParserTest, EmptyQueryRejected) {
  EXPECT_FALSE(ParseConstraints("").ok());
  EXPECT_FALSE(ParseConstraints(" ; \n ;").ok());
}

}  // namespace
}  // namespace emp
