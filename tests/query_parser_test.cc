#include "constraints/query_parser.h"

#include <gtest/gtest.h>

namespace emp {
namespace {

TEST(QueryParserTest, LowerBoundForm) {
  auto c = ParseConstraint("SUM(TOTALPOP) >= 20000");
  ASSERT_TRUE(c.ok()) << c.status().ToString();
  EXPECT_EQ(*c, Constraint::Sum("TOTALPOP", 20000, kNoUpperBound));
}

TEST(QueryParserTest, UpperBoundForm) {
  auto c = ParseConstraint("MIN(POP16UP) <= 3000");
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(*c, Constraint::Min("POP16UP", kNoLowerBound, 3000));
}

TEST(QueryParserTest, InRangeForm) {
  auto c = ParseConstraint("AVG(EMPLOYED) IN [1500, 3500]");
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(*c, Constraint::Avg("EMPLOYED", 1500, 3500));
}

TEST(QueryParserTest, SandwichForm) {
  auto c = ParseConstraint("1500 <= AVG(EMPLOYED) <= 3500");
  ASSERT_TRUE(c.ok()) << c.status().ToString();
  EXPECT_EQ(*c, Constraint::Avg("EMPLOYED", 1500, 3500));
}

TEST(QueryParserTest, CountStar) {
  auto star = ParseConstraint("COUNT(*) IN [2, 40]");
  ASSERT_TRUE(star.ok());
  EXPECT_EQ(*star, Constraint::Count(2, 40));
  auto empty = ParseConstraint("count() >= 3");
  ASSERT_TRUE(empty.ok());
  EXPECT_EQ(empty->aggregate, Aggregate::kCount);
}

TEST(QueryParserTest, CaseInsensitiveKeywords) {
  auto c = ParseConstraint("sum(TOTALPOP) In [1, 2]");
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(c->aggregate, Aggregate::kSum);
  // Attribute case is preserved.
  EXPECT_EQ(c->attribute, "TOTALPOP");
}

TEST(QueryParserTest, KiloMegaSuffixesAndInf) {
  auto k = ParseConstraint("SUM(POP) >= 20k");
  ASSERT_TRUE(k.ok());
  EXPECT_DOUBLE_EQ(k->lower, 20000);
  auto m = ParseConstraint("SUM(POP) IN [1.5m, inf]");
  ASSERT_TRUE(m.ok());
  EXPECT_DOUBLE_EQ(m->lower, 1500000);
  EXPECT_DOUBLE_EQ(m->upper, kNoUpperBound);
  auto neg = ParseConstraint("MIN(POP) IN [-inf, 3k]");
  ASSERT_TRUE(neg.ok());
  EXPECT_DOUBLE_EQ(neg->lower, kNoLowerBound);
}

TEST(QueryParserTest, RejectsMalformedInput) {
  EXPECT_FALSE(ParseConstraint("").ok());
  EXPECT_FALSE(ParseConstraint("FOO(X) >= 1").ok());
  EXPECT_FALSE(ParseConstraint("SUM(X)").ok());
  EXPECT_FALSE(ParseConstraint("SUM(X) == 5").ok());
  EXPECT_FALSE(ParseConstraint("SUM(X) IN [5]").ok());
  EXPECT_FALSE(ParseConstraint("SUM(X) IN 5, 6").ok());
  EXPECT_FALSE(ParseConstraint("SUM() >= 5").ok());
  EXPECT_FALSE(ParseConstraint("COUNT(POP) >= 5").ok());
  EXPECT_FALSE(ParseConstraint("SUM(X >= 5").ok());
}

TEST(QueryParserTest, RejectsSemanticViolations) {
  // Inverted range fails Constraint::Validate.
  EXPECT_FALSE(ParseConstraint("SUM(X) IN [10, 5]").ok());
  // COUNT upper below 1.
  EXPECT_FALSE(ParseConstraint("COUNT(*) <= 0.5").ok());
}

TEST(QueryParserTest, MultiConstraintSeparators) {
  auto q = ParseConstraints(
      "MIN(POP16UP) <= 3000; AVG(EMPLOYED) IN [1500, 3500]\n"
      "SUM(TOTALPOP) >= 20k AND COUNT(*) <= 40");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  ASSERT_EQ(q->size(), 4u);
  EXPECT_EQ((*q)[0].aggregate, Aggregate::kMin);
  EXPECT_EQ((*q)[1].aggregate, Aggregate::kAvg);
  EXPECT_EQ((*q)[2].aggregate, Aggregate::kSum);
  EXPECT_EQ((*q)[3].aggregate, Aggregate::kCount);
}

TEST(QueryParserTest, AndInsideIdentifierNotSplit) {
  auto q = ParseConstraints("SUM(LANDAREA) >= 5");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ((*q)[0].attribute, "LANDAREA");
}

TEST(QueryParserTest, EmptyQueryRejected) {
  EXPECT_FALSE(ParseConstraints("").ok());
  EXPECT_FALSE(ParseConstraints(" ; \n ;").ok());
}

// The messages below are load-bearing: the solve service surfaces them
// verbatim as HTTP 400 bodies, so clients (and the service tests) match
// on the exact text. A reworded message is an API change.

TEST(QueryParserTest, UnknownAggregateMessage) {
  auto c = ParseConstraint("FOO(TOTALPOP) >= 1");
  ASSERT_FALSE(c.ok());
  EXPECT_EQ(c.status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(c.status().message(), "unknown aggregate 'FOO'");
  // Aggregates are matched case-insensitively; the echo is uppercased.
  EXPECT_EQ(ParseConstraint("foo(X) >= 1").status().message(),
            "unknown aggregate 'FOO'");
}

TEST(QueryParserTest, MalformedAggregateTermMessages) {
  EXPECT_EQ(ParseConstraint("SUM(TOTALPOP >= 1").status().message(),
            "missing ')' in aggregate term");
  EXPECT_EQ(ParseConstraint("SUM() >= 1").status().message(),
            "SUM requires an attribute name");
  EXPECT_EQ(ParseConstraint("SUM(*) >= 1").status().message(),
            "SUM requires an attribute name");
  EXPECT_EQ(ParseConstraint("COUNT(x) >= 1").status().message(),
            "COUNT takes '*' or nothing, got 'x'");
  EXPECT_EQ(ParseConstraint("TOTALPOP >= 1").status().message(),
            "expected AGG(attribute), got 'TOTALPOP >= 1'");
}

TEST(QueryParserTest, MissingComparisonMessages) {
  EXPECT_EQ(ParseConstraint("SUM(TOTALPOP)").status().message(),
            "constraint is missing a comparison: 'SUM(TOTALPOP)'");
  EXPECT_EQ(ParseConstraint("SUM(TOTALPOP) == 5").status().message(),
            "expected '>=', '<=', or 'IN' after SUM(...)");
}

TEST(QueryParserTest, MalformedRangeMessages) {
  EXPECT_EQ(ParseConstraint("SUM(X) IN [5]").status().message(),
            "IN range needs two comma-separated bounds");
  EXPECT_EQ(ParseConstraint("SUM(X) IN 5, 9").status().message(),
            "IN expects a [lower, upper] range: 'SUM(X) IN 5, 9'");
  EXPECT_EQ(ParseConstraint("SUM(X) IN [, 9]").status().message(),
            "empty bound");
  EXPECT_EQ(ParseConstraint("SUM(X) >= ").status().message(),
            "empty bound");
}

TEST(QueryParserTest, ReversedBoundsMessage) {
  auto c = ParseConstraint("SUM(TOTALPOP) IN [5000, 100]");
  ASSERT_FALSE(c.ok());
  EXPECT_EQ(c.status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(c.status().message(),
            "constraint lower bound exceeds upper bound: "
            "SUM(TOTALPOP) in [5000, 100]");
}

TEST(QueryParserTest, NoConstraintsMessage) {
  auto q = ParseConstraints(" ; \n ;");
  ASSERT_FALSE(q.ok());
  EXPECT_EQ(q.status().message(), "query contains no constraints");
}

}  // namespace
}  // namespace emp
