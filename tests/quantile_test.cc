#include "obs/quantile.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <random>
#include <vector>

namespace emp {
namespace obs {
namespace {

/// True rank of `estimate` within the sorted stream: the number of
/// elements strictly below it. With duplicates an estimate matching a
/// run of equal values has a rank *range*; we check the estimate's rank
/// interval against the allowed band, which is what the GK guarantee
/// actually promises.
void ExpectWithinRankBound(std::vector<double> sorted, double phi,
                           double estimate, double bound) {
  const auto n = static_cast<int64_t>(sorted.size());
  const int64_t lo_rank =
      std::lower_bound(sorted.begin(), sorted.end(), estimate) -
      sorted.begin();
  const int64_t hi_rank =
      std::upper_bound(sorted.begin(), sorted.end(), estimate) -
      sorted.begin() - 1;
  const double target = phi * static_cast<double>(n);
  const double slack = bound * static_cast<double>(n) + 1.0;
  EXPECT_GE(static_cast<double>(hi_rank), target - slack)
      << "phi=" << phi << " estimate=" << estimate;
  EXPECT_LE(static_cast<double>(lo_rank), target + slack)
      << "phi=" << phi << " estimate=" << estimate;
}

void CheckStream(std::vector<double> values, double eps) {
  QuantileSketch sketch(eps);
  for (double v : values) sketch.Observe(v);
  std::sort(values.begin(), values.end());
  ASSERT_EQ(sketch.count(), static_cast<int64_t>(values.size()));
  for (double phi : {0.0, 0.01, 0.05, 0.25, 0.5, 0.75, 0.95, 0.99, 1.0}) {
    ExpectWithinRankBound(values, phi, sketch.Query(phi),
                          sketch.rank_error_bound());
  }
}

TEST(QuantileSketchTest, EmptySketchQueriesNaN) {
  QuantileSketch sketch;
  EXPECT_TRUE(std::isnan(sketch.Query(0.5)));
  EXPECT_EQ(sketch.count(), 0);
  EXPECT_EQ(sketch.sum(), 0.0);
}

TEST(QuantileSketchTest, SingleSample) {
  QuantileSketch sketch;
  sketch.Observe(42.0);
  for (double phi : {0.0, 0.5, 1.0}) EXPECT_EQ(sketch.Query(phi), 42.0);
  EXPECT_EQ(sketch.count(), 1);
  EXPECT_EQ(sketch.sum(), 42.0);
}

TEST(QuantileSketchTest, UniformStreamWithinBound) {
  std::mt19937 rng(7);
  std::uniform_real_distribution<double> dist(0.0, 1000.0);
  std::vector<double> values;
  values.reserve(20000);
  for (int i = 0; i < 20000; ++i) values.push_back(dist(rng));
  CheckStream(std::move(values), 0.005);
}

TEST(QuantileSketchTest, ExponentialStreamWithinBound) {
  std::mt19937 rng(11);
  std::exponential_distribution<double> dist(0.01);
  std::vector<double> values;
  values.reserve(20000);
  for (int i = 0; i < 20000; ++i) values.push_back(dist(rng));
  CheckStream(std::move(values), 0.005);
}

TEST(QuantileSketchTest, SortedAndReversedStreamsWithinBound) {
  std::vector<double> ascending;
  for (int i = 0; i < 10000; ++i) ascending.push_back(i);
  CheckStream(ascending, 0.01);
  std::reverse(ascending.begin(), ascending.end());
  CheckStream(std::move(ascending), 0.01);
}

TEST(QuantileSketchTest, AllEqualStream) {
  QuantileSketch sketch;
  for (int i = 0; i < 5000; ++i) sketch.Observe(3.25);
  for (double phi : {0.0, 0.5, 0.99, 1.0}) {
    EXPECT_EQ(sketch.Query(phi), 3.25);
  }
}

TEST(QuantileSketchTest, SummaryStaysSublinear) {
  QuantileSketch sketch(0.01);
  std::mt19937 rng(3);
  std::uniform_real_distribution<double> dist(0.0, 1.0);
  for (int i = 0; i < 100000; ++i) sketch.Observe(dist(rng));
  // Force a flush so the buffer is folded in before we measure.
  (void)sketch.Query(0.5);
  // 1/eps * log2(eps * n) ~= 100 * 10; allow generous headroom, the
  // point is "not O(n)".
  EXPECT_LT(sketch.tuple_count(), 5000);
}

TEST(QuantileSketchTest, SumAndCountAreExact) {
  QuantileSketch sketch;
  double expected = 0.0;
  for (int i = 1; i <= 1000; ++i) {
    sketch.Observe(i);
    expected += i;
  }
  EXPECT_EQ(sketch.count(), 1000);
  EXPECT_DOUBLE_EQ(sketch.sum(), expected);
}

TEST(QuantileSketchTest, MergeEmptyIntoEmpty) {
  QuantileSketch a;
  QuantileSketch b;
  a.Merge(b);
  EXPECT_EQ(a.count(), 0);
  EXPECT_TRUE(std::isnan(a.Query(0.5)));
}

TEST(QuantileSketchTest, MergeEmptyIntoNonEmptyAndBack) {
  QuantileSketch a;
  QuantileSketch empty;
  for (int i = 0; i < 100; ++i) a.Observe(i);
  a.Merge(empty);
  EXPECT_EQ(a.count(), 100);
  QuantileSketch c;
  c.Merge(a);
  EXPECT_EQ(c.count(), 100);
  ExpectWithinRankBound([] {
    std::vector<double> v;
    for (int i = 0; i < 100; ++i) v.push_back(i);
    return v;
  }(), 0.5, c.Query(0.5), c.rank_error_bound());
}

TEST(QuantileSketchTest, MergeSingleSampleSketches) {
  QuantileSketch a;
  QuantileSketch b;
  a.Observe(1.0);
  b.Observe(2.0);
  a.Merge(b);
  EXPECT_EQ(a.count(), 2);
  EXPECT_EQ(a.Query(0.0), 1.0);
  EXPECT_EQ(a.Query(1.0), 2.0);
  EXPECT_DOUBLE_EQ(a.sum(), 3.0);
}

TEST(QuantileSketchTest, MergeSumsRankErrorBounds) {
  QuantileSketch a(0.01);
  QuantileSketch b(0.02);
  a.Observe(1.0);
  b.Observe(2.0);
  const double before = a.rank_error_bound();
  a.Merge(b);
  EXPECT_DOUBLE_EQ(a.rank_error_bound(), before + b.rank_error_bound());
}

TEST(QuantileSketchTest, MergedStreamsWithinMergedBound) {
  std::mt19937 rng(23);
  std::uniform_real_distribution<double> lo(0.0, 100.0);
  std::uniform_real_distribution<double> hi(900.0, 1000.0);
  QuantileSketch a(0.005);
  QuantileSketch b(0.005);
  std::vector<double> all;
  for (int i = 0; i < 10000; ++i) {
    const double v = lo(rng);
    a.Observe(v);
    all.push_back(v);
  }
  for (int i = 0; i < 10000; ++i) {
    const double v = hi(rng);
    b.Observe(v);
    all.push_back(v);
  }
  a.Merge(b);
  std::sort(all.begin(), all.end());
  ASSERT_EQ(a.count(), static_cast<int64_t>(all.size()));
  for (double phi : {0.01, 0.25, 0.5, 0.75, 0.99}) {
    ExpectWithinRankBound(all, phi, a.Query(phi), a.rank_error_bound());
  }
}

TEST(QuantileSketchTest, CopyIsDeepAndIndependent) {
  QuantileSketch a;
  for (int i = 0; i < 100; ++i) a.Observe(i);
  QuantileSketch b(a);
  b.Observe(1e9);
  EXPECT_EQ(a.count(), 100);
  EXPECT_EQ(b.count(), 101);
}

/// ---- WindowedQuantiles ----

struct FakeClock {
  int64_t now_ms = 0;
  std::function<int64_t()> Fn() {
    return [this] { return now_ms; };
  }
};

WindowedQuantiles::Options SmallWindow() {
  WindowedQuantiles::Options options;
  options.bucket_ms = 1000;
  options.buckets = 5;
  return options;
}

TEST(WindowedQuantilesTest, EmptyWindowYieldsEmptySketch) {
  FakeClock clock;
  WindowedQuantiles wq(SmallWindow(), clock.Fn());
  QuantileSketch view = wq.WindowSketch(3000);
  EXPECT_EQ(view.count(), 0);
  EXPECT_TRUE(std::isnan(view.Query(0.5)));
  EXPECT_EQ(wq.WindowCount(3000), 0);
}

TEST(WindowedQuantilesTest, SingleSampleWindow) {
  FakeClock clock;
  WindowedQuantiles wq(SmallWindow(), clock.Fn());
  wq.Observe(5.0);
  EXPECT_EQ(wq.WindowCount(3000), 1);
  EXPECT_EQ(wq.WindowSketch(3000).Query(0.5), 5.0);
}

TEST(WindowedQuantilesTest, AllEqualValuesAcrossBuckets) {
  FakeClock clock;
  WindowedQuantiles wq(SmallWindow(), clock.Fn());
  for (int bucket = 0; bucket < 3; ++bucket) {
    for (int i = 0; i < 10; ++i) wq.Observe(7.0);
    clock.now_ms += 1000;
  }
  QuantileSketch view = wq.WindowSketch(5000);
  EXPECT_EQ(view.count(), 30);
  EXPECT_EQ(view.Query(0.5), 7.0);
  EXPECT_EQ(view.Query(0.99), 7.0);
}

TEST(WindowedQuantilesTest, OldBucketsRotateOut) {
  FakeClock clock;
  WindowedQuantiles wq(SmallWindow(), clock.Fn());
  wq.Observe(1.0);  // bucket epoch 0
  clock.now_ms = 2500;
  wq.Observe(2.0);  // bucket epoch 2
  // A 1 s window from t=2500 reaches back to epoch 1; epoch 0 is out.
  EXPECT_EQ(wq.WindowCount(1000), 1);
  EXPECT_EQ(wq.WindowSketch(1000).Query(0.5), 2.0);
  // Both fit in a 3 s window.
  EXPECT_EQ(wq.WindowCount(3000), 2);
  // Advance past the ring: everything expires from the window...
  clock.now_ms = 60000;
  wq.Observe(9.0);
  EXPECT_EQ(wq.WindowCount(1000), 1);
  EXPECT_EQ(wq.WindowSketch(1000).Query(0.5), 9.0);
  // ...but the lifetime total survives rotation.
  EXPECT_EQ(wq.total_count(), 3);
}

TEST(WindowedQuantilesTest, ReusedRingSlotDoesNotResurrectOldData) {
  FakeClock clock;
  WindowedQuantiles wq(SmallWindow(), clock.Fn());
  wq.Observe(1.0);  // epoch 0
  // Epoch 5 maps to ring slot 0 again (5 % 5 == 0).
  clock.now_ms = 5000;
  wq.Observe(2.0);
  EXPECT_EQ(wq.WindowCount(5000), 1);
  EXPECT_EQ(wq.WindowSketch(5000).Query(0.5), 2.0);
}

TEST(WindowedQuantilesTest, WindowLongerThanRingIsClamped) {
  FakeClock clock;
  WindowedQuantiles wq(SmallWindow(), clock.Fn());
  for (int i = 0; i < 20; ++i) wq.Observe(i);
  EXPECT_EQ(wq.WindowCount(1000000), 20);
}

TEST(WindowedQuantilesTest, WindowViewCarriesSummedBound) {
  FakeClock clock;
  WindowedQuantiles::Options options = SmallWindow();
  options.eps = 0.001;
  WindowedQuantiles wq(options, clock.Fn());
  for (int bucket = 0; bucket < 3; ++bucket) {
    wq.Observe(bucket);
    clock.now_ms += 1000;
  }
  QuantileSketch view = wq.WindowSketch(5000);
  EXPECT_EQ(view.count(), 3);
  // Merging k non-empty buckets sums their bounds on top of the view's
  // own epsilon; must stay well under the "useless" threshold for the
  // default 1m/5m windows.
  EXPECT_LE(view.rank_error_bound(), 0.001 * 4 + 1e-12);
}

TEST(WindowedQuantilesTest, RandomizedWindowAccuracy) {
  FakeClock clock;
  WindowedQuantiles::Options options;
  options.bucket_ms = 1000;
  options.buckets = 10;
  options.eps = 0.001;
  WindowedQuantiles wq(options, clock.Fn());
  std::mt19937 rng(99);
  std::uniform_real_distribution<double> dist(0.0, 500.0);
  std::vector<double> in_window;
  // Bucket 0 falls outside the window (a 5 s window from t=6000 reaches
  // back to epoch 1); buckets 1..6 are in range.
  for (int bucket = 0; bucket < 7; ++bucket) {
    for (int i = 0; i < 2000; ++i) {
      const double v = dist(rng);
      wq.Observe(v);
      if (bucket >= 1) in_window.push_back(v);
    }
    if (bucket + 1 < 7) clock.now_ms += 1000;
  }
  QuantileSketch view = wq.WindowSketch(5000);
  ASSERT_EQ(view.count(), static_cast<int64_t>(in_window.size()));
  std::sort(in_window.begin(), in_window.end());
  for (double phi : {0.05, 0.5, 0.95, 0.99}) {
    ExpectWithinRankBound(in_window, phi, view.Query(phi),
                          view.rank_error_bound());
  }
}

}  // namespace
}  // namespace obs
}  // namespace emp
