#include "data/transforms.h"

#include <gtest/gtest.h>

#include <cmath>

#include "core/fact_solver.h"
#include "data/synthetic/dataset_catalog.h"
#include "test_util.h"

namespace emp {
namespace {

TEST(ZScoreTest, StandardizesMoments) {
  auto z = ZScore({2, 4, 6, 8});
  ASSERT_TRUE(z.ok());
  double mean = 0;
  double var = 0;
  for (double v : *z) mean += v;
  mean /= 4;
  for (double v : *z) var += v * v;
  var /= 4;
  EXPECT_NEAR(mean, 0.0, 1e-12);
  EXPECT_NEAR(var, 1.0, 1e-12);
}

TEST(ZScoreTest, RejectsConstantAndEmpty) {
  EXPECT_FALSE(ZScore({5, 5, 5}).ok());
  EXPECT_FALSE(ZScore({}).ok());
}

TEST(MinMaxTest, ScalesIntoUnitInterval) {
  auto s = MinMaxScale({10, 20, 15});
  ASSERT_TRUE(s.ok());
  EXPECT_DOUBLE_EQ((*s)[0], 0.0);
  EXPECT_DOUBLE_EQ((*s)[1], 1.0);
  EXPECT_DOUBLE_EQ((*s)[2], 0.5);
}

TEST(MinMaxTest, RejectsConstant) {
  EXPECT_FALSE(MinMaxScale({3, 3}).ok());
}

TEST(LogTransformTest, AppliesLogWithOffset) {
  auto l = LogTransform({0, std::exp(1.0) - 1}, 1.0);
  ASSERT_TRUE(l.ok());
  EXPECT_NEAR((*l)[0], 0.0, 1e-12);
  EXPECT_NEAR((*l)[1], 1.0, 1e-12);
}

TEST(LogTransformTest, RejectsNonPositive) {
  EXPECT_FALSE(LogTransform({-1, 2}).ok());
  EXPECT_FALSE(LogTransform({0}).ok());
}

TEST(CompositeTest, BuildsWeightedColumn) {
  AreaSet areas = test::MakeAreaSet(
      test::PathGraph(4),
      {{"a", {1, 2, 3, 4}}, {"b", {40, 30, 20, 10}}});
  auto enriched = WithCompositeAttribute(
      areas, "mix",
      {{"a", 1.0, /*standardize=*/true}, {"b", 2.0, /*standardize=*/true}});
  ASSERT_TRUE(enriched.ok()) << enriched.status().ToString();
  EXPECT_TRUE(enriched->attributes().HasColumn("mix"));
  EXPECT_EQ(enriched->dissimilarity_attribute(), "mix");
  // a ascending, b descending with double weight => mix is descending.
  const auto mix = *enriched->attributes().ColumnByName("mix");
  EXPECT_GT(mix[0], mix[3]);
}

TEST(CompositeTest, UnstandardizedUsesRawValues) {
  AreaSet areas = test::MakeAreaSet(test::PathGraph(2),
                                    {{"a", {1, 2}}, {"b", {10, 20}}});
  auto enriched = WithCompositeAttribute(
      areas, "mix", {{"a", 1.0, false}, {"b", 0.5, false}},
      /*use_as_dissimilarity=*/false);
  ASSERT_TRUE(enriched.ok());
  const auto mix = *enriched->attributes().ColumnByName("mix");
  EXPECT_DOUBLE_EQ(mix[0], 6.0);
  EXPECT_DOUBLE_EQ(mix[1], 12.0);
  EXPECT_EQ(enriched->dissimilarity_attribute(), "a");
}

TEST(CompositeTest, RejectsBadInputs) {
  AreaSet areas = test::PathAreaSet({1, 2, 3});
  EXPECT_FALSE(WithCompositeAttribute(areas, "x", {}).ok());
  EXPECT_FALSE(
      WithCompositeAttribute(areas, "s", {{"s", 1.0, false}}).ok());
  EXPECT_FALSE(
      WithCompositeAttribute(areas, "x", {{"ghost", 1.0, false}}).ok());
}

TEST(CompositeTest, SolverRunsOnCompositeDissimilarity) {
  // Multi-criteria homogeneity: regions homogeneous in a blend of
  // employment and household counts.
  auto areas = synthetic::MakeCatalogDataset("tiny");
  ASSERT_TRUE(areas.ok());
  auto enriched = WithCompositeAttribute(
      *areas, "BLEND", {{"EMPLOYED", 1.0, true}, {"HOUSEHOLDS", 1.0, true}});
  ASSERT_TRUE(enriched.ok());
  auto sol = SolveEmp(*enriched,
                      {Constraint::Sum("TOTALPOP", 20000, kNoUpperBound)});
  ASSERT_TRUE(sol.ok());
  EXPECT_GT(sol->p(), 0);
}

}  // namespace
}  // namespace emp
