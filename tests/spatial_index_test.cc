#include "geometry/spatial_index.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/rng.h"

namespace emp {
namespace {

/// Brute-force k nearest for cross-checking.
std::vector<int32_t> BruteKnn(const std::vector<Point>& pts, Point q, int k,
                              int32_t exclude) {
  std::vector<int32_t> ids;
  for (int32_t i = 0; i < static_cast<int32_t>(pts.size()); ++i) {
    if (i != exclude) ids.push_back(i);
  }
  std::sort(ids.begin(), ids.end(), [&](int32_t a, int32_t b) {
    return DistanceSquared(pts[static_cast<size_t>(a)], q) <
           DistanceSquared(pts[static_cast<size_t>(b)], q);
  });
  if (static_cast<int>(ids.size()) > k) ids.resize(static_cast<size_t>(k));
  return ids;
}

TEST(SpatialIndexTest, FindsSingleNearest) {
  std::vector<Point> pts = {{0, 0}, {10, 0}, {0, 10}, {5, 5}};
  SpatialGridIndex idx(pts);
  auto nn = idx.KNearest({6, 6}, 1);
  ASSERT_EQ(nn.size(), 1u);
  EXPECT_EQ(nn[0], 3);
}

TEST(SpatialIndexTest, ExcludeSkipsSelf) {
  std::vector<Point> pts = {{0, 0}, {1, 0}, {2, 0}};
  SpatialGridIndex idx(pts);
  auto nn = idx.KNearest({0, 0}, 1, /*exclude=*/0);
  ASSERT_EQ(nn.size(), 1u);
  EXPECT_EQ(nn[0], 1);
}

TEST(SpatialIndexTest, ReturnsFewerWhenIndexSmall) {
  std::vector<Point> pts = {{0, 0}, {1, 1}};
  SpatialGridIndex idx(pts);
  auto nn = idx.KNearest({0, 0}, 10, 0);
  EXPECT_EQ(nn.size(), 1u);
}

TEST(SpatialIndexTest, MatchesBruteForceOnRandomPoints) {
  Rng rng(42);
  std::vector<Point> pts;
  for (int i = 0; i < 500; ++i) {
    pts.push_back({rng.Uniform(0, 100), rng.Uniform(0, 60)});
  }
  SpatialGridIndex idx(pts);
  for (int trial = 0; trial < 50; ++trial) {
    Point q{rng.Uniform(0, 100), rng.Uniform(0, 60)};
    auto fast = idx.KNearest(q, 8);
    auto brute = BruteKnn(pts, q, 8, -1);
    ASSERT_EQ(fast.size(), brute.size());
    // Compare by distance (ties can reorder ids).
    for (size_t i = 0; i < fast.size(); ++i) {
      EXPECT_NEAR(Distance(pts[static_cast<size_t>(fast[i])], q),
                  Distance(pts[static_cast<size_t>(brute[i])], q), 1e-9);
    }
  }
}

TEST(SpatialIndexTest, KnnSortedAscendingByDistance) {
  Rng rng(7);
  std::vector<Point> pts;
  for (int i = 0; i < 200; ++i) {
    pts.push_back({rng.Uniform(0, 10), rng.Uniform(0, 10)});
  }
  SpatialGridIndex idx(pts);
  auto nn = idx.KNearest({5, 5}, 20);
  for (size_t i = 1; i < nn.size(); ++i) {
    EXPECT_LE(DistanceSquared(pts[static_cast<size_t>(nn[i - 1])], {5, 5}),
              DistanceSquared(pts[static_cast<size_t>(nn[i])], {5, 5}));
  }
}

TEST(SpatialIndexTest, WithinRadiusMatchesBruteForce) {
  Rng rng(13);
  std::vector<Point> pts;
  for (int i = 0; i < 300; ++i) {
    pts.push_back({rng.Uniform(0, 20), rng.Uniform(0, 20)});
  }
  SpatialGridIndex idx(pts);
  Point q{10, 10};
  const double radius = 3.0;
  auto got = idx.WithinRadius(q, radius);
  std::sort(got.begin(), got.end());
  std::vector<int32_t> expect;
  for (int32_t i = 0; i < 300; ++i) {
    if (Distance(pts[static_cast<size_t>(i)], q) <= radius) expect.push_back(i);
  }
  EXPECT_EQ(got, expect);
}

TEST(SpatialIndexTest, HandlesDegenerateAllSamePoint) {
  std::vector<Point> pts(10, Point{1, 1});
  SpatialGridIndex idx(pts);
  auto nn = idx.KNearest({1, 1}, 5);
  EXPECT_EQ(nn.size(), 5u);
}

}  // namespace
}  // namespace emp
