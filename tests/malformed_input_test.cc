// Loader robustness against a corpus of malformed on-disk inputs
// (tests/fixtures/malformed/). Every case must surface a typed Status —
// never crash, hang, or silently produce a half-parsed AreaSet.

#include <gtest/gtest.h>

#include <string>

#include "common/csv.h"
#include "data/geojson.h"
#include "data/loader.h"
#include "graph/gal.h"

#ifndef EMP_TEST_FIXTURE_DIR
#error "EMP_TEST_FIXTURE_DIR must point at tests/fixtures"
#endif

namespace emp {
namespace {

std::string Fixture(const std::string& name) {
  return std::string(EMP_TEST_FIXTURE_DIR) + "/malformed/" + name;
}

TEST(MalformedCsvTest, TruncatedRowIsIOError) {
  auto result = LoadAreaSetFromCsvFile(Fixture("truncated_row.csv"));
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kIOError);
  EXPECT_NE(result.status().message().find("row"), std::string::npos)
      << result.status().ToString();
}

TEST(MalformedCsvTest, NonNumericAttributeIsIOErrorNamingTheCell) {
  auto result = LoadAreaSetFromCsvFile(Fixture("bad_number.csv"));
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kIOError);
  EXPECT_NE(result.status().message().find("pop"), std::string::npos)
      << "message should name the offending column: "
      << result.status().ToString();
}

TEST(MalformedCsvTest, UnparseableWktIsIOErrorNamingTheRow) {
  auto result = LoadAreaSetFromCsvFile(Fixture("bad_wkt.csv"));
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kIOError);
  EXPECT_NE(result.status().message().find("row 1"), std::string::npos)
      << result.status().ToString();
}

TEST(MalformedCsvTest, MissingGeometryColumnIsInvalidArgument) {
  auto result = LoadAreaSetFromCsvFile(Fixture("missing_geometry.csv"));
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(result.status().message().find("WKT"), std::string::npos)
      << result.status().ToString();
}

TEST(MalformedCsvTest, EmptyFileIsIOError) {
  auto result = LoadAreaSetFromCsvFile(Fixture("empty.csv"));
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kIOError);
}

TEST(MalformedCsvTest, MissingFileIsIOError) {
  auto result = LoadAreaSetFromCsvFile(Fixture("does_not_exist.csv"));
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kIOError);
}

TEST(MalformedGalTest, OutOfRangeNeighborIsIOError) {
  auto result = ReadGalFile(Fixture("dangling_neighbor.gal"));
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kIOError);
  EXPECT_NE(result.status().message().find("out of range"),
            std::string::npos)
      << result.status().ToString();
}

TEST(MalformedGalTest, DegreeLargerThanListedNeighborsIsIOError) {
  auto result = ReadGalFile(Fixture("bad_degree.gal"));
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kIOError);
}

TEST(MalformedGalTest, EmptyTextIsIOError) {
  auto result = FromGal("");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kIOError);
}

TEST(MalformedGalTest, NegativeCountIsIOError) {
  auto result = FromGal("-4\n");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kIOError);
}

TEST(MalformedGeoJsonTest, NonFeatureCollectionRootIsIOError) {
  auto text = ReadFile(Fixture("not_geojson.json"));
  ASSERT_TRUE(text.ok()) << text.status().ToString();
  auto result = FromGeoJson(*text);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kIOError);
  EXPECT_NE(result.status().message().find("FeatureCollection"),
            std::string::npos)
      << result.status().ToString();
}

TEST(MalformedGeoJsonTest, TruncatedDocumentFailsCleanly) {
  auto text = ReadFile(Fixture("truncated.json"));
  ASSERT_TRUE(text.ok()) << text.status().ToString();
  auto result = FromGeoJson(*text);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kIOError);
}

TEST(MalformedGeoJsonTest, PlainGarbageFailsCleanly) {
  auto result = FromGeoJson("]]]]{{{{ not json at all");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kIOError);
}

}  // namespace
}  // namespace emp
