#include "common/json_writer.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/json.h"

namespace emp {
namespace {

TEST(JsonWriterTest, EmptyObjectAndArray) {
  {
    JsonWriter w;
    w.BeginObject();
    w.EndObject();
    EXPECT_EQ(w.str(), "{}");
  }
  {
    JsonWriter w;
    w.BeginArray();
    w.EndArray();
    EXPECT_EQ(w.str(), "[]");
  }
}

TEST(JsonWriterTest, PrettyObject) {
  JsonWriter w;
  w.BeginObject();
  w.Key("p");
  w.Int(12);
  w.Key("name");
  w.String("solve");
  w.EndObject();
  EXPECT_EQ(w.str(), "{\n  \"p\": 12,\n  \"name\": \"solve\"\n}");
}

TEST(JsonWriterTest, CompactModeSingleLine) {
  JsonWriter w(/*indent=*/0);
  w.BeginObject();
  w.Key("a");
  w.BeginArray();
  w.Int(1);
  w.Int(2);
  w.EndArray();
  w.EndObject();
  EXPECT_EQ(w.str(), "{\"a\": [1, 2]}");
}

TEST(JsonWriterTest, InlineArrayInsidePrettyDocument) {
  JsonWriter w;
  w.BeginObject();
  w.Key("areas");
  w.BeginInlineArray();
  w.Int(3);
  w.Int(1);
  w.Int(4);
  w.EndArray();
  w.EndObject();
  EXPECT_EQ(w.str(), "{\n  \"areas\": [3, 1, 4]\n}");
}

TEST(JsonWriterTest, NestedContainersInheritInline) {
  JsonWriter w;
  w.BeginObject();
  w.Key("rows");
  w.BeginInlineObject();
  w.Key("inner");
  w.BeginArray();  // nested inside an inline parent -> renders inline too
  w.Int(1);
  w.EndArray();
  w.EndObject();
  w.EndObject();
  EXPECT_EQ(w.str(), "{\n  \"rows\": {\"inner\": [1]}\n}");
}

TEST(JsonWriterTest, EscapesControlAndQuoteCharacters) {
  EXPECT_EQ(JsonWriter::Escape("a\"b"), "a\\\"b");
  EXPECT_EQ(JsonWriter::Escape("back\\slash"), "back\\\\slash");
  EXPECT_EQ(JsonWriter::Escape("line\nbreak"), "line\\nbreak");
  EXPECT_EQ(JsonWriter::Escape("tab\there"), "tab\\there");
  EXPECT_EQ(JsonWriter::Escape(std::string_view("\x01", 1)), "\\u0001");
}

TEST(JsonWriterTest, DoubleFormatting) {
  JsonWriter w(0);
  w.BeginArray();
  w.Double(1.5);
  w.Double(2.0);                // integral value, no trailing zeros
  w.Double(1.0 / 3.0, 3);      // custom precision
  w.Double(std::nan(""));      // non-finite -> null
  w.Double(1.0 / 0.0);         // +inf -> null
  w.EndArray();
  EXPECT_EQ(w.str(), "[1.5, 2, 0.333, null, null]");
}

TEST(JsonWriterTest, BoolAndNull) {
  JsonWriter w(0);
  w.BeginArray();
  w.Bool(true);
  w.Bool(false);
  w.Null();
  w.EndArray();
  EXPECT_EQ(w.str(), "[true, false, null]");
}

TEST(JsonWriterTest, OutputParsesBack) {
  JsonWriter w;
  w.BeginObject();
  w.Key("weird \"key\"\n");
  w.String("value\twith\\escapes");
  w.Key("list");
  w.BeginInlineArray();
  for (int i = 0; i < 5; ++i) w.Int(i * 10);
  w.EndArray();
  w.Key("nested");
  w.BeginObject();
  w.Key("x");
  w.Double(-2.25);
  w.EndObject();
  w.EndObject();

  auto doc = json::Parse(w.str());
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  const json::Value* list = doc->Find("list");
  ASSERT_NE(list, nullptr);
  ASSERT_EQ(list->AsArray().size(), 5u);
  EXPECT_EQ(list->AsArray()[3].AsNumber(), 30);
  const json::Value* key = doc->Find("weird \"key\"\n");
  ASSERT_NE(key, nullptr);
  EXPECT_EQ(key->AsString(), "value\twith\\escapes");
  EXPECT_EQ(doc->Find("nested")->Find("x")->AsNumber(), -2.25);
}

TEST(ReportBuilderTest, FlatFields) {
  ReportBuilder b;
  b.Field("name", "emp").Field("count", int64_t{3}).Field("ratio", 0.5);
  b.Field("ok", true);
  std::string text = std::move(b).Finish();
  auto doc = json::Parse(text);
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  EXPECT_EQ(doc->Find("name")->AsString(), "emp");
  EXPECT_EQ(doc->Find("count")->AsNumber(), 3);
  EXPECT_EQ(doc->Find("ratio")->AsNumber(), 0.5);
  EXPECT_TRUE(doc->Find("ok")->AsBool());
}

TEST(JsonWriterTest, RawSplicesPreserializedDocuments) {
  // An inner document rendered separately (as SolutionToJson and
  // ProgressToJson are), including a trailing newline...
  JsonWriter inner(2);
  inner.BeginObject();
  inner.Key("p");
  inner.Int(7);
  inner.EndObject();
  const std::string inner_text = std::move(inner).TakeString() + "\n";

  // ...splices into an outer document as one value.
  JsonWriter outer(2);
  outer.BeginObject();
  outer.Key("result");
  outer.Raw(inner_text);
  outer.Key("after");
  outer.Int(1);
  outer.EndObject();
  auto doc = json::Parse(std::move(outer).TakeString());
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  EXPECT_EQ(doc->Find("result")->Find("p")->AsNumber(), 7);
  EXPECT_EQ(doc->Find("after")->AsNumber(), 1);
}

TEST(JsonWriterTest, RawOfEmptyTextIsNull) {
  JsonWriter w(0);
  w.BeginObject();
  w.Key("missing");
  w.Raw("");
  w.EndObject();
  auto doc = json::Parse(std::move(w).TakeString());
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  EXPECT_TRUE(doc->Find("missing")->is_null());
}

TEST(ReportBuilderTest, WriterEscapeHatchForNestedStructure) {
  ReportBuilder b;
  b.Field("p", int32_t{7});
  b.Key("regions");
  JsonWriter& w = b.writer();
  w.BeginArray();
  w.BeginInlineObject();
  w.Key("id");
  w.Int(0);
  w.EndObject();
  w.EndArray();
  std::string text = std::move(b).Finish();
  auto doc = json::Parse(text);
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  ASSERT_TRUE(doc->Find("regions")->is_array());
  EXPECT_EQ(doc->Find("regions")->AsArray()[0].Find("id")->AsNumber(), 0);
}

}  // namespace
}  // namespace emp
