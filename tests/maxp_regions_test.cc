#include "baseline/maxp_regions.h"

#include <gtest/gtest.h>

#include <set>

#include "core/fact_solver.h"
#include "data/synthetic/dataset_catalog.h"
#include "graph/connectivity.h"
#include "test_util.h"

namespace emp {
namespace {

void ValidateMaxP(const AreaSet& areas, double threshold,
                  const Solution& sol) {
  auto bc = BoundConstraints::Create(
      &areas, {Constraint::Sum("pop", threshold, kNoUpperBound)});
  ASSERT_TRUE(bc.ok());
  ConnectivityChecker connectivity(&areas.graph());
  std::set<int32_t> seen;
  for (const auto& region : sol.regions) {
    EXPECT_FALSE(region.empty());
    EXPECT_TRUE(connectivity.IsConnected(region));
    RegionStats stats(&*bc);
    for (int32_t a : region) {
      stats.Add(a);
      EXPECT_TRUE(seen.insert(a).second);
    }
    EXPECT_GE(stats.AggregateValue(0), threshold);
  }
}

AreaSet Grid5(const char* name = "g") {
  (void)name;
  return test::MakeAreaSet(
      test::GridGraph(5, 5),
      {{"pop", {12, 7, 9, 14, 6, 8, 11, 5, 13, 9, 10, 7, 12,
                6, 9, 11, 8, 14, 5, 10, 7, 13, 9, 6, 12}}});
}

TEST(MaxPRegionsTest, ProducesValidRegions) {
  AreaSet areas = Grid5();
  MaxPRegionsSolver solver(&areas, "pop", 25);
  auto sol = solver.Solve();
  ASSERT_TRUE(sol.ok()) << sol.status().ToString();
  EXPECT_GE(sol->p(), 2);
  ValidateMaxP(areas, 25, *sol);
}

TEST(MaxPRegionsTest, AssignsEveryAreaWhenFeasible) {
  AreaSet areas = Grid5();
  MaxPRegionsSolver solver(&areas, "pop", 25);
  auto sol = solver.Solve();
  ASSERT_TRUE(sol.ok());
  // Classic max-p has no U0: total pop (234) >> threshold, grid connected,
  // so everything should be absorbed.
  EXPECT_EQ(sol->num_unassigned(), 0);
}

TEST(MaxPRegionsTest, InfeasibleWhenTotalBelowThreshold) {
  AreaSet areas = test::PathAreaSet({1, 2, 3});
  MaxPRegionsSolver solver(&areas, "s", 100);
  auto sol = solver.Solve();
  ASSERT_FALSE(sol.ok());
  EXPECT_EQ(sol.status().code(), StatusCode::kInfeasible);
}

TEST(MaxPRegionsTest, HigherThresholdFewerRegions) {
  AreaSet areas = Grid5();
  auto low = MaxPRegionsSolver(&areas, "pop", 20).Solve();
  auto high = MaxPRegionsSolver(&areas, "pop", 60).Solve();
  ASSERT_TRUE(low.ok());
  ASSERT_TRUE(high.ok());
  EXPECT_GT(low->p(), high->p());
}

TEST(MaxPRegionsTest, TabuImprovesOrKeepsHeterogeneity) {
  AreaSet areas = Grid5();
  auto sol = MaxPRegionsSolver(&areas, "pop", 30).Solve();
  ASSERT_TRUE(sol.ok());
  EXPECT_LE(sol->heterogeneity, sol->heterogeneity_before_local_search + 1e-9);
}

TEST(MaxPRegionsTest, ComparableToFactOnSameSingleSumQuery) {
  // The paper reports FaCT's `S` row tracks the MP baseline closely
  // (Table IV). Verify p values are within a modest factor on a synthetic
  // map large enough to be meaningful.
  auto areas = synthetic::MakeCatalogDataset("small");
  ASSERT_TRUE(areas.ok());
  const double threshold = 20000;
  auto mp = MaxPRegionsSolver(&*areas, "TOTALPOP", threshold).Solve();
  auto fact =
      SolveEmp(*areas, {Constraint::Sum("TOTALPOP", threshold, kNoUpperBound)});
  ASSERT_TRUE(mp.ok());
  ASSERT_TRUE(fact.ok());
  EXPECT_GT(mp->p(), 0);
  EXPECT_GT(fact->p(), 0);
  double ratio = static_cast<double>(fact->p()) / mp->p();
  EXPECT_GT(ratio, 0.6);
  EXPECT_LT(ratio, 1.67);
}

TEST(MaxPRegionsTest, DeterministicForFixedSeed) {
  AreaSet areas = Grid5();
  SolverOptions options;
  options.seed = 3;
  auto a = MaxPRegionsSolver(&areas, "pop", 25, options).Solve();
  auto b = MaxPRegionsSolver(&areas, "pop", 25, options).Solve();
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->region_of, b->region_of);
}

TEST(MaxPRegionsTest, CreateValidatesEagerly) {
  AreaSet areas = Grid5();
  EXPECT_FALSE(MaxPRegionsSolver::Create(nullptr, "pop", 25).ok());
  EXPECT_FALSE(MaxPRegionsSolver::Create(&areas, "no_such_attr", 25).ok());
  EXPECT_FALSE(MaxPRegionsSolver::Create(&areas, "pop", 0).ok());
  EXPECT_FALSE(MaxPRegionsSolver::Create(&areas, "pop", -5).ok());
  SolverOptions bad;
  bad.construction_iterations = 0;
  EXPECT_FALSE(MaxPRegionsSolver::Create(&areas, "pop", 25, bad).ok());

  auto solver = MaxPRegionsSolver::Create(&areas, "pop", 25);
  ASSERT_TRUE(solver.ok()) << solver.status().ToString();
  auto sol = solver->Solve();
  ASSERT_TRUE(sol.ok()) << sol.status().ToString();
  EXPECT_GE(sol->p(), 1);
}

}  // namespace
}  // namespace emp
