#include "core/explore.h"

#include <gtest/gtest.h>

#include "data/synthetic/dataset_catalog.h"
#include "test_util.h"

namespace emp {
namespace {

const AreaSet& SmallMap() {
  static const AreaSet* kMap = [] {
    auto areas = synthetic::MakeCatalogDataset("tiny");
    if (!areas.ok()) std::abort();
    return new AreaSet(std::move(areas).value());
  }();
  return *kMap;
}

TEST(SweepThresholdTest, PDecreasesWithSumLowerBound) {
  std::vector<Constraint> cs = {
      Constraint::Sum("TOTALPOP", 10000, kNoUpperBound)};
  auto sweep = SweepThreshold(SmallMap(), cs, 0, SweepBound::kLower,
                              {10000, 30000, 60000});
  ASSERT_TRUE(sweep.ok()) << sweep.status().ToString();
  ASSERT_EQ(sweep->size(), 3u);
  EXPECT_TRUE((*sweep)[0].feasible);
  EXPECT_GE((*sweep)[0].p, (*sweep)[1].p);
  EXPECT_GE((*sweep)[1].p, (*sweep)[2].p);
  // The swept constraint is echoed back per point.
  EXPECT_DOUBLE_EQ((*sweep)[2].constraint.lower, 60000);
}

TEST(SweepThresholdTest, InfeasibleValuesMarkedNotFailed) {
  std::vector<Constraint> cs = {
      Constraint::Sum("TOTALPOP", 10000, kNoUpperBound)};
  auto sweep = SweepThreshold(SmallMap(), cs, 0, SweepBound::kLower,
                              {10000, 1e12});
  ASSERT_TRUE(sweep.ok());
  EXPECT_TRUE((*sweep)[0].feasible);
  EXPECT_FALSE((*sweep)[1].feasible);  // dataset total below 1e12
}

TEST(SweepThresholdTest, InvalidBoundCombinationsMarked) {
  std::vector<Constraint> cs = {Constraint::Avg("EMPLOYED", 1500, 3500)};
  // Sweeping the upper bound below the lower bound is invalid per-point.
  auto sweep =
      SweepThreshold(SmallMap(), cs, 0, SweepBound::kUpper, {1000, 4000});
  ASSERT_TRUE(sweep.ok());
  EXPECT_FALSE((*sweep)[0].feasible);
  EXPECT_TRUE((*sweep)[1].feasible);
}

TEST(SweepThresholdTest, RejectsBadArguments) {
  std::vector<Constraint> cs = {
      Constraint::Sum("TOTALPOP", 10000, kNoUpperBound)};
  EXPECT_FALSE(
      SweepThreshold(SmallMap(), cs, 5, SweepBound::kLower, {1}).ok());
  EXPECT_FALSE(
      SweepThreshold(SmallMap(), cs, 0, SweepBound::kLower, {}).ok());
}

TEST(SuggestRelaxationsTest, TightAvgRangeGetsSuggestions) {
  // A tight AVG band leaves many areas unassigned; widening it should be
  // suggested with a measured unassigned reduction.
  std::vector<Constraint> cs = {Constraint::Avg("EMPLOYED", 2800, 3200)};
  auto suggestions = SuggestRelaxations(SmallMap(), cs);
  ASSERT_TRUE(suggestions.ok()) << suggestions.status().ToString();
  ASSERT_FALSE(suggestions->empty());
  const RelaxationSuggestion& best = suggestions->front();
  EXPECT_EQ(best.constraint_index, 0);
  EXPECT_LT(best.unassigned_fraction, best.baseline_unassigned_fraction);
  // The suggestion widens, never narrows.
  EXPECT_LE(best.suggested.lower, best.original.lower);
  EXPECT_GE(best.suggested.upper, best.original.upper);
  EXPECT_NE(best.ToString().find("relax"), std::string::npos);
}

TEST(SuggestRelaxationsTest, SatisfiedQueryYieldsFewOrNoSuggestions) {
  std::vector<Constraint> cs = {
      Constraint::Sum("TOTALPOP", 20000, kNoUpperBound)};
  auto suggestions = SuggestRelaxations(SmallMap(), cs);
  ASSERT_TRUE(suggestions.ok());
  // Everything is assigned already; no relaxation can gain 2 %.
  EXPECT_TRUE(suggestions->empty());
}

TEST(SuggestRelaxationsTest, RestoresFeasibility) {
  // SUM lower bound just above the dataset total: infeasible; widening
  // the lower bound (scaling it down) restores feasibility.
  auto stats = SmallMap().attributes().Stats("TOTALPOP");
  ASSERT_TRUE(stats.ok());
  std::vector<Constraint> cs = {
      Constraint::Sum("TOTALPOP", stats->sum * 1.05, kNoUpperBound)};
  RelaxOptions options;
  options.widen_factors = {1.1, 1.3};
  auto suggestions = SuggestRelaxations(SmallMap(), cs, options);
  ASSERT_TRUE(suggestions.ok());
  ASSERT_FALSE(suggestions->empty());
  EXPECT_GE(suggestions->front().p, 1);
}

TEST(SuggestRelaxationsTest, RejectsEmptyQuery) {
  EXPECT_FALSE(SuggestRelaxations(SmallMap(), {}).ok());
}

}  // namespace
}  // namespace emp
