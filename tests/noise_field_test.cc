#include "data/synthetic/noise_field.h"

#include <gtest/gtest.h>

#include <cmath>

namespace emp {
namespace synthetic {
namespace {

TEST(NoiseFieldTest, DeterministicForSameSeed) {
  NoiseField a(42, 0.1);
  NoiseField b(42, 0.1);
  for (double x = 0; x < 10; x += 1.3) {
    EXPECT_DOUBLE_EQ(a.Sample(x, 2 * x), b.Sample(x, 2 * x));
  }
}

TEST(NoiseFieldTest, DifferentSeedsDiffer) {
  NoiseField a(1, 0.1);
  NoiseField b(2, 0.1);
  int same = 0;
  for (int i = 0; i < 50; ++i) {
    if (std::fabs(a.Sample(i * 0.7, i * 1.1) - b.Sample(i * 0.7, i * 1.1)) <
        1e-12) {
      ++same;
    }
  }
  EXPECT_LT(same, 3);
}

TEST(NoiseFieldTest, ValuesInUnitInterval) {
  NoiseField f(7, 0.2, 4);
  for (int i = 0; i < 500; ++i) {
    double v = f.Sample(i * 0.37, i * 0.53);
    EXPECT_GE(v, 0.0);
    EXPECT_LE(v, 1.0);
  }
}

TEST(NoiseFieldTest, SpatiallySmooth) {
  // Nearby samples must be much closer than far samples on average.
  NoiseField f(11, 0.05, 1);
  double near_diff = 0.0;
  double far_diff = 0.0;
  int n = 0;
  for (int i = 0; i < 200; ++i) {
    double x = i * 1.7;
    double y = i * 0.9;
    near_diff += std::fabs(f.Sample(x, y) - f.Sample(x + 0.05, y));
    far_diff += std::fabs(f.Sample(x, y) - f.Sample(x + 57.0, y + 91.0));
    ++n;
  }
  EXPECT_LT(near_diff / n, 0.25 * (far_diff / n));
}

TEST(NoiseFieldTest, HigherFrequencyVariesFaster) {
  NoiseField slow(3, 0.02, 1);
  NoiseField fast(3, 1.0, 1);
  double slow_var = 0.0;
  double fast_var = 0.0;
  for (int i = 0; i < 300; ++i) {
    double x = i * 0.31;
    slow_var += std::fabs(slow.Sample(x, 0) - slow.Sample(x + 0.3, 0));
    fast_var += std::fabs(fast.Sample(x, 0) - fast.Sample(x + 0.3, 0));
  }
  EXPECT_LT(slow_var, fast_var);
}

TEST(InverseNormalCdfTest, KnownQuantiles) {
  EXPECT_NEAR(InverseNormalCdf(0.5), 0.0, 1e-8);
  EXPECT_NEAR(InverseNormalCdf(0.975), 1.959964, 1e-5);
  EXPECT_NEAR(InverseNormalCdf(0.025), -1.959964, 1e-5);
  EXPECT_NEAR(InverseNormalCdf(0.8413447), 1.0, 1e-4);
}

TEST(InverseNormalCdfTest, SymmetricAroundMedian) {
  for (double p : {0.01, 0.1, 0.3, 0.45}) {
    EXPECT_NEAR(InverseNormalCdf(p), -InverseNormalCdf(1.0 - p), 1e-7);
  }
}

TEST(InverseNormalCdfTest, MonotoneIncreasing) {
  double prev = InverseNormalCdf(0.001);
  for (double p = 0.01; p < 1.0; p += 0.01) {
    double v = InverseNormalCdf(p);
    EXPECT_GT(v, prev);
    prev = v;
  }
}

TEST(InverseNormalCdfTest, ExtremesAreHugeButFinite) {
  EXPECT_LT(InverseNormalCdf(0.0), -1e100);
  EXPECT_GT(InverseNormalCdf(1.0), 1e100);
}

}  // namespace
}  // namespace synthetic
}  // namespace emp
