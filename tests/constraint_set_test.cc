#include "constraints/constraint_set.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace emp {
namespace {

class ConstraintSetTest : public ::testing::Test {
 protected:
  ConstraintSetTest()
      : areas_(test::MakeAreaSet(
            test::PathGraph(5),
            {{"pop", {100, 200, 300, 400, 500}},
             {"emp", {10, 20, 30, 40, 50}}})) {}

  AreaSet areas_;
};

TEST_F(ConstraintSetTest, BindsColumnsAndClassifiesFamilies) {
  auto bc = BoundConstraints::Create(
      &areas_, {Constraint::Min("pop", 0, 250),
                Constraint::Avg("emp", 20, 40),
                Constraint::Sum("pop", 300, kNoUpperBound),
                Constraint::Count(1, 3),
                Constraint::Max("emp", 30, kNoUpperBound)});
  ASSERT_TRUE(bc.ok());
  EXPECT_EQ(bc->size(), 5);
  EXPECT_EQ(bc->extrema_indices(), (std::vector<int>{0, 4}));
  EXPECT_EQ(bc->centrality_indices(), (std::vector<int>{1}));
  EXPECT_EQ(bc->counting_indices(), (std::vector<int>{2, 3}));
  EXPECT_TRUE(bc->has_extrema());
  EXPECT_TRUE(bc->has_centrality());
  EXPECT_TRUE(bc->has_counting());
}

TEST_F(ConstraintSetTest, ValueLookupsResolveColumns) {
  auto bc = BoundConstraints::Create(
      &areas_,
      {Constraint::Sum("emp", 0, kNoUpperBound), Constraint::Count(1, 5)});
  ASSERT_TRUE(bc.ok());
  EXPECT_DOUBLE_EQ(bc->ValueOf(0, 2), 30);
  EXPECT_DOUBLE_EQ(bc->ValueOf(1, 2), 1.0);  // COUNT counts areas
}

TEST_F(ConstraintSetTest, RejectsUnknownAttribute) {
  auto bc = BoundConstraints::Create(
      &areas_, {Constraint::Sum("missing", 0, kNoUpperBound)});
  ASSERT_FALSE(bc.ok());
  EXPECT_EQ(bc.status().code(), StatusCode::kNotFound);
}

TEST_F(ConstraintSetTest, RejectsInvalidConstraint) {
  EXPECT_FALSE(
      BoundConstraints::Create(&areas_, {Constraint::Sum("pop", 9, 3)}).ok());
  EXPECT_FALSE(BoundConstraints::Create(nullptr, {}).ok());
}

TEST_F(ConstraintSetTest, EmptyConstraintSetIsAllowed) {
  auto bc = BoundConstraints::Create(&areas_, {});
  ASSERT_TRUE(bc.ok());
  EXPECT_EQ(bc->size(), 0);
  EXPECT_FALSE(bc->has_extrema());
  // With no extrema constraints, every area seeds (§V-D).
  EXPECT_TRUE(bc->AreaIsSeed(0));
}

TEST_F(ConstraintSetTest, InvalidAreaRules) {
  auto bc = BoundConstraints::Create(
      &areas_, {Constraint::Min("pop", 150, 250),   // pop<150 invalid
                Constraint::Max("emp", 0, 45),      // emp>45 invalid
                Constraint::Sum("pop", 0, 450)});   // pop>450 invalid
  ASSERT_TRUE(bc.ok());
  EXPECT_TRUE(bc->AreaIsInvalid(0));   // pop=100 < 150
  EXPECT_FALSE(bc->AreaIsInvalid(1));  // pop=200, emp=20
  EXPECT_FALSE(bc->AreaIsInvalid(2));
  EXPECT_FALSE(bc->AreaIsInvalid(3));
  EXPECT_TRUE(bc->AreaIsInvalid(4));   // emp=50 > 45 and pop=500 > 450
}

TEST_F(ConstraintSetTest, AvgAndCountNeverInvalidateAreas) {
  auto bc = BoundConstraints::Create(
      &areas_, {Constraint::Avg("pop", 1e6, 2e6), Constraint::Count(3, 4)});
  ASSERT_TRUE(bc.ok());
  for (int32_t a = 0; a < 5; ++a) {
    EXPECT_FALSE(bc->AreaIsInvalid(a));
  }
}

TEST_F(ConstraintSetTest, SeedRules) {
  auto bc = BoundConstraints::Create(
      &areas_, {Constraint::Min("pop", 100, 200),
                Constraint::Max("emp", 40, 50)});
  ASSERT_TRUE(bc.ok());
  // Seeds for MIN: pop in [100, 200] -> areas 0, 1.
  EXPECT_TRUE(bc->IsSeedFor(0, 0));
  EXPECT_TRUE(bc->IsSeedFor(0, 1));
  EXPECT_FALSE(bc->IsSeedFor(0, 2));
  // Seeds for MAX: emp in [40, 50] -> areas 3, 4.
  EXPECT_TRUE(bc->IsSeedFor(1, 3));
  EXPECT_FALSE(bc->IsSeedFor(1, 2));
  // AreaIsSeed = union.
  EXPECT_TRUE(bc->AreaIsSeed(0));
  EXPECT_FALSE(bc->AreaIsSeed(2));
  EXPECT_TRUE(bc->AreaIsSeed(4));
}

}  // namespace
}  // namespace emp
