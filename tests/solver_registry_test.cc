#include <gtest/gtest.h>

#include <algorithm>
#include <memory>

#include "core/fact_solver.h"
#include "core/solver.h"
#include "test_util.h"

namespace emp {
namespace {

AreaSet Grid4x4() {
  return test::MakeAreaSet(
      test::GridGraph(4, 4),
      {{"POP", {10, 12, 11, 9, 10, 13, 12, 11, 9, 10, 11, 12, 13, 9, 10,
                11}}});
}

SolverSpec FactSpec(const AreaSet& areas) {
  SolverSpec spec;
  spec.solver = "fact";
  spec.areas = &areas;
  spec.query = "SUM(POP) >= 30";
  spec.options.seed = 7;
  return spec;
}

TEST(SolverRegistryTest, BuiltinsAreRegistered) {
  const std::vector<std::string> names = RegisteredSolverNames();
  for (const char* expected : {"fact", "maxp", "skater"}) {
    EXPECT_NE(std::find(names.begin(), names.end(), expected), names.end())
        << "missing builtin solver '" << expected << "'";
  }
}

TEST(SolverRegistryTest, UnknownSolverNameListsRegistered) {
  const AreaSet areas = Grid4x4();
  SolverSpec spec = FactSpec(areas);
  spec.solver = "simplex";
  auto solver = CreateSolver(spec);
  ASSERT_FALSE(solver.ok());
  EXPECT_EQ(solver.status().code(), StatusCode::kNotFound);
  EXPECT_NE(solver.status().message().find("unknown solver 'simplex'"),
            std::string::npos)
      << solver.status().message();
  EXPECT_NE(solver.status().message().find("fact"), std::string::npos);
}

TEST(SolverRegistryTest, NullAreasIsInvalidArgument) {
  SolverSpec spec;
  spec.solver = "fact";
  spec.query = "SUM(POP) >= 30";
  auto solver = CreateSolver(spec);
  ASSERT_FALSE(solver.ok());
  EXPECT_EQ(solver.status().code(), StatusCode::kInvalidArgument);
}

TEST(SolverRegistryTest, FactSolvesThroughInterface) {
  const AreaSet areas = Grid4x4();
  auto solver = CreateSolver(FactSpec(areas));
  ASSERT_TRUE(solver.ok()) << solver.status().ToString();
  EXPECT_EQ((*solver)->name(), "fact");
  ASSERT_EQ((*solver)->constraints().size(), 1u);
  EXPECT_EQ((*solver)->constraints()[0],
            Constraint::Sum("POP", 30, kNoUpperBound));

  auto via_interface = (*solver)->Solve();
  ASSERT_TRUE(via_interface.ok()) << via_interface.status().ToString();

  // Same spec through the concrete type: identical assignment (the
  // interface adds no nondeterminism).
  SolverOptions options;
  options.seed = 7;
  auto direct = FactSolver::Create(
      &areas, {Constraint::Sum("POP", 30, kNoUpperBound)}, options);
  ASSERT_TRUE(direct.ok());
  auto expected = direct->Solve();
  ASSERT_TRUE(expected.ok());
  EXPECT_EQ(via_interface->region_of, expected->region_of);
  EXPECT_EQ(via_interface->p(), expected->p());
}

TEST(SolverRegistryTest, QueryAppendsToPrebuiltConstraints) {
  const AreaSet areas = Grid4x4();
  SolverSpec spec = FactSpec(areas);
  spec.constraints = {Constraint::Count(1, 8)};
  auto solver = CreateSolver(spec);
  ASSERT_TRUE(solver.ok()) << solver.status().ToString();
  ASSERT_EQ((*solver)->constraints().size(), 2u);
  EXPECT_EQ((*solver)->constraints()[0], Constraint::Count(1, 8));
  EXPECT_EQ((*solver)->constraints()[1],
            Constraint::Sum("POP", 30, kNoUpperBound));
}

TEST(SolverRegistryTest, MalformedQueryFailsAtCreate) {
  const AreaSet areas = Grid4x4();
  SolverSpec spec = FactSpec(areas);
  spec.query = "FOO(POP) >= 30";
  auto solver = CreateSolver(spec);
  ASSERT_FALSE(solver.ok());
  EXPECT_EQ(solver.status().message(), "unknown aggregate 'FOO'");
}

TEST(SolverRegistryTest, BaselinesSolveThroughInterface) {
  const AreaSet areas = Grid4x4();
  for (const char* name : {"maxp", "skater"}) {
    SolverSpec spec;
    spec.solver = name;
    spec.areas = &areas;
    spec.attribute = "POP";
    spec.threshold = 30;
    auto solver = CreateSolver(spec);
    ASSERT_TRUE(solver.ok()) << name << ": " << solver.status().ToString();
    EXPECT_EQ((*solver)->name(), name);
    ASSERT_EQ((*solver)->constraints().size(), 1u);
    EXPECT_EQ((*solver)->constraints()[0],
              Constraint::Sum("POP", 30, kNoUpperBound));
    auto solution = (*solver)->Solve();
    ASSERT_TRUE(solution.ok()) << name << ": "
                               << solution.status().ToString();
    EXPECT_GE(solution->p(), 1);
  }
}

TEST(SolverRegistryTest, BaselineRejectsQueryAndMissingThreshold) {
  const AreaSet areas = Grid4x4();
  SolverSpec spec;
  spec.solver = "maxp";
  spec.areas = &areas;
  spec.query = "SUM(POP) >= 30";  // baselines take attribute + threshold
  auto with_query = CreateSolver(spec);
  ASSERT_FALSE(with_query.ok());
  EXPECT_EQ(with_query.status().code(), StatusCode::kInvalidArgument);

  spec.query.clear();
  auto missing = CreateSolver(spec);  // no attribute/threshold either
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(missing.status().code(), StatusCode::kInvalidArgument);
}

TEST(SolverRegistryTest, RegisterRejectsDuplicatesAndAcceptsNew) {
  auto duplicate = RegisterSolver(
      "fact", [](const SolverSpec&) -> Result<std::unique_ptr<Solver>> {
        return Status::Internal("never called");
      });
  ASSERT_FALSE(duplicate.ok());

  // A custom registration becomes creatable; forward to the fact factory.
  auto registered = RegisterSolver(
      "registry-test-custom",
      [](const SolverSpec& spec) -> Result<std::unique_ptr<Solver>> {
        SolverSpec forwarded = spec;
        forwarded.solver = "fact";
        return CreateSolver(forwarded);
      });
  ASSERT_TRUE(registered.ok()) << registered.ToString();

  const AreaSet areas = Grid4x4();
  SolverSpec spec = FactSpec(areas);
  spec.solver = "registry-test-custom";
  auto solver = CreateSolver(spec);
  ASSERT_TRUE(solver.ok()) << solver.status().ToString();
  EXPECT_EQ((*solver)->name(), "fact");
}

}  // namespace
}  // namespace emp
