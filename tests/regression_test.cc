// Regression guard: solution quality on fixed synthetic instances with
// fixed seeds. Bands (not exact values) so legitimate heuristic tweaks
// survive, but silent quality collapses — like the round-2 over-merging
// regression that once drove p to 1 — fail loudly.

#include <gtest/gtest.h>

#include "baseline/maxp_regions.h"
#include "core/fact_solver.h"
#include "data/synthetic/dataset_catalog.h"

namespace emp {
namespace {

std::vector<Constraint> DefaultSuite() {
  return {
      Constraint::Min("POP16UP", kNoLowerBound, 3000),
      Constraint::Avg("EMPLOYED", 1500, 3500),
      Constraint::Sum("TOTALPOP", 20000, kNoUpperBound),
  };
}

TEST(RegressionTest, DefaultSuiteOnSmallDataset) {
  auto areas = synthetic::MakeCatalogDataset("small");  // 400 areas, fixed
  ASSERT_TRUE(areas.ok());
  auto sol = SolveEmp(*areas, DefaultSuite());
  ASSERT_TRUE(sol.ok());
  // Measured p = 36 at the time of writing; allow a generous band.
  EXPECT_GE(sol->p(), 25);
  EXPECT_LE(sol->p(), 50);
  EXPECT_LE(sol->num_unassigned(), 40);
  EXPECT_GT(sol->HeterogeneityImprovement(), 0.10);
}

TEST(RegressionTest, SingleSumTracksMaxPBaseline) {
  auto areas = synthetic::MakeCatalogDataset("small");
  ASSERT_TRUE(areas.ok());
  SolverOptions options;
  options.tabu_max_no_improve = 100;
  auto fact = SolveEmp(
      *areas, {Constraint::Sum("TOTALPOP", 20000, kNoUpperBound)}, options);
  auto mp = MaxPRegionsSolver(&*areas, "TOTALPOP", 20000, options).Solve();
  ASSERT_TRUE(fact.ok());
  ASSERT_TRUE(mp.ok());
  // Table IV's headline claim: FaCT's S combo is comparable to MP. Guard
  // at >= 80% (measured ~95%).
  EXPECT_GE(fact->p() * 10, mp->p() * 8)
      << "FaCT p=" << fact->p() << " vs MP p=" << mp->p();
}

TEST(RegressionTest, HardAvgRangeDoesNotCollapse) {
  // The paper's bottleneck case (AVG 3k±1k). A previous implementation
  // bug collapsed the whole map into one region here.
  auto areas = synthetic::MakeCatalogDataset("small");
  ASSERT_TRUE(areas.ok());
  SolverOptions options;
  options.tabu_max_no_improve = 50;
  auto sol = SolveEmp(*areas, {Constraint::Avg("EMPLOYED", 2000, 4000)},
                      options);
  ASSERT_TRUE(sol.ok());
  EXPECT_GE(sol->p(), 20) << "region growing collapsed";
  // And most of the map should still be assigned or reported unassigned
  // coherently.
  EXPECT_LT(sol->num_unassigned(), areas->num_areas() / 2);
}

TEST(RegressionTest, MinOnlySeedCountBound) {
  // Single MIN with open lower bound: p is bounded by (and in practice
  // lands near) the seed count.
  auto areas = synthetic::MakeCatalogDataset("small");
  ASSERT_TRUE(areas.ok());
  auto bound = BoundConstraints::Create(
      &*areas, {Constraint::Min("POP16UP", kNoLowerBound, 3000)});
  ASSERT_TRUE(bound.ok());
  int64_t seeds = 0;
  for (int32_t a = 0; a < areas->num_areas(); ++a) {
    if (bound->AreaIsSeed(a)) ++seeds;
  }
  SolverOptions options;
  options.run_local_search = false;
  auto sol = SolveEmp(
      *areas, {Constraint::Min("POP16UP", kNoLowerBound, 3000)}, options);
  ASSERT_TRUE(sol.ok());
  EXPECT_LE(sol->p(), seeds);
  EXPECT_GE(sol->p(), seeds / 2);
}

}  // namespace
}  // namespace emp
