#include "core/partition.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "test_util.h"

namespace emp {
namespace {

class PartitionTest : public ::testing::Test {
 protected:
  PartitionTest()
      : areas_(test::MakeAreaSet(test::GridGraph(3, 3),
                                 {{"s", {1, 2, 3, 4, 5, 6, 7, 8, 9}}})),
        bound_(std::move(BoundConstraints::Create(
                             &areas_, {Constraint::Sum("s", 0, 1000)}))
                   .value()) {}

  AreaSet areas_;
  BoundConstraints bound_;
};

TEST_F(PartitionTest, StartsUnassigned) {
  Partition p(&bound_);
  EXPECT_EQ(p.num_areas(), 9);
  EXPECT_EQ(p.NumRegions(), 0);
  EXPECT_EQ(p.RegionOf(4), -1);
  EXPECT_EQ(p.UnassignedAreas().size(), 9u);
  EXPECT_TRUE(p.ValidateInvariants().ok());
}

TEST_F(PartitionTest, AssignAndUnassign) {
  Partition p(&bound_);
  int32_t r = p.CreateRegion();
  p.Assign(0, r);
  p.Assign(1, r);
  EXPECT_EQ(p.RegionOf(0), r);
  EXPECT_EQ(p.region(r).size(), 2);
  EXPECT_DOUBLE_EQ(p.region(r).stats.AggregateValue(0), 3);
  EXPECT_TRUE(p.ValidateInvariants().ok());
  p.Unassign(0);
  EXPECT_EQ(p.RegionOf(0), -1);
  EXPECT_DOUBLE_EQ(p.region(r).stats.AggregateValue(0), 2);
  EXPECT_TRUE(p.ValidateInvariants().ok());
}

TEST_F(PartitionTest, MoveBetweenRegions) {
  Partition p(&bound_);
  int32_t r1 = p.CreateRegion();
  int32_t r2 = p.CreateRegion();
  p.Assign(0, r1);
  p.Assign(1, r1);
  p.Assign(2, r2);
  p.Move(1, r2);
  EXPECT_EQ(p.RegionOf(1), r2);
  EXPECT_EQ(p.region(r1).size(), 1);
  EXPECT_EQ(p.region(r2).size(), 2);
  EXPECT_DOUBLE_EQ(p.region(r2).stats.AggregateValue(0), 5);
  EXPECT_TRUE(p.ValidateInvariants().ok());
}

TEST_F(PartitionTest, MergeRegions) {
  Partition p(&bound_);
  int32_t r1 = p.CreateRegion();
  int32_t r2 = p.CreateRegion();
  p.Assign(0, r1);
  p.Assign(1, r2);
  p.Assign(2, r2);
  int32_t winner = p.MergeRegions(r1, r2);
  EXPECT_EQ(winner, r1);
  EXPECT_FALSE(p.IsAlive(r2));
  EXPECT_EQ(p.region(r1).size(), 3);
  EXPECT_EQ(p.RegionOf(2), r1);
  EXPECT_EQ(p.NumRegions(), 1);
  EXPECT_TRUE(p.ValidateInvariants().ok());
}

TEST_F(PartitionTest, DissolveReturnsAreasToPool) {
  Partition p(&bound_);
  int32_t r = p.CreateRegion();
  p.Assign(3, r);
  p.Assign(4, r);
  p.DissolveRegion(r);
  EXPECT_FALSE(p.IsAlive(r));
  EXPECT_EQ(p.RegionOf(3), -1);
  EXPECT_EQ(p.NumRegions(), 0);
  EXPECT_EQ(p.UnassignedAreas().size(), 9u);
  EXPECT_TRUE(p.ValidateInvariants().ok());
}

TEST_F(PartitionTest, DeactivateExcludesFromUnassigned) {
  Partition p(&bound_);
  p.Deactivate(8);
  EXPECT_FALSE(p.IsActive(8));
  auto u = p.UnassignedAreas();
  EXPECT_EQ(u.size(), 8u);
  EXPECT_TRUE(std::find(u.begin(), u.end(), 8) == u.end());
}

TEST_F(PartitionTest, NeighborRegionQueriesOnGrid) {
  // Grid ids: 0 1 2 / 3 4 5 / 6 7 8.
  Partition p(&bound_);
  int32_t left = p.CreateRegion();   // column 0
  int32_t right = p.CreateRegion();  // column 2
  for (int32_t a : {0, 3, 6}) p.Assign(a, left);
  for (int32_t a : {2, 5, 8}) p.Assign(a, right);
  // Middle column unassigned: regions are NOT adjacent.
  EXPECT_TRUE(p.NeighborRegionsOf(left).empty());
  // Area 1 borders left (0) and right (2).
  auto nbrs = p.NeighborRegionsOfArea(1);
  std::sort(nbrs.begin(), nbrs.end());
  EXPECT_EQ(nbrs, (std::vector<int32_t>{left, right}));
  // Assign the middle column to left; now regions touch.
  for (int32_t a : {1, 4, 7}) p.Assign(a, left);
  EXPECT_EQ(p.NeighborRegionsOf(left), (std::vector<int32_t>{right}));
  EXPECT_EQ(p.NeighborRegionsOf(right), (std::vector<int32_t>{left}));
}

TEST_F(PartitionTest, BoundaryAreas) {
  Partition p(&bound_);
  int32_t r = p.CreateRegion();
  for (int32_t a : {0, 1, 3, 4}) p.Assign(a, r);  // 2x2 block top-left
  auto boundary = p.BoundaryAreas(r);
  std::sort(boundary.begin(), boundary.end());
  // Corner area 0 only touches 1 and 3 (both inside); the rest touch out.
  EXPECT_EQ(boundary, (std::vector<int32_t>{1, 3, 4}));

  // A full-grid region has no boundary areas.
  Partition q(&bound_);
  int32_t all = q.CreateRegion();
  for (int32_t a = 0; a < 9; ++a) q.Assign(a, all);
  EXPECT_TRUE(q.BoundaryAreas(all).empty());
}

TEST(PartitionStarTest, NeighborRegionQueriesDedupeOnStar) {
  // Star graph: center 0 adjacent to leaves 1..8 and nothing else. The
  // center sees many neighbors in the SAME region, exercising the
  // epoch-tagged dedup that replaced the quadratic std::find scan.
  std::vector<std::pair<int32_t, int32_t>> edges;
  for (int32_t leaf = 1; leaf <= 8; ++leaf) edges.push_back({0, leaf});
  AreaSet areas = test::MakeAreaSet(
      std::move(ContiguityGraph::FromEdges(9, edges)).value(),
      {{"s", {1, 2, 3, 4, 5, 6, 7, 8, 9}}});
  BoundConstraints bound =
      std::move(BoundConstraints::Create(&areas, {Constraint::Count(1, 9)}))
          .value();
  Partition p(&bound);
  int32_t rc = p.CreateRegion();  // center
  int32_t ra = p.CreateRegion();  // four leaves
  int32_t rb = p.CreateRegion();  // three leaves; leaf 8 stays unassigned
  p.Assign(0, rc);
  for (int32_t a : {1, 2, 3, 6}) p.Assign(a, ra);
  for (int32_t a : {4, 5, 7}) p.Assign(a, rb);

  // Center touches ra four times and rb three times: each reported once,
  // own region and the unassigned leaf excluded.
  auto center_nbrs = p.NeighborRegionsOfArea(0);
  std::sort(center_nbrs.begin(), center_nbrs.end());
  EXPECT_EQ(center_nbrs, (std::vector<int32_t>{ra, rb}));

  // Every ra member touches only the center: one region, reported once.
  EXPECT_EQ(p.NeighborRegionsOf(ra), (std::vector<int32_t>{rc}));
  EXPECT_EQ(p.NeighborRegionsOf(rb), (std::vector<int32_t>{rc}));
  // The center region borders both leaf regions.
  auto rc_nbrs = p.NeighborRegionsOf(rc);
  std::sort(rc_nbrs.begin(), rc_nbrs.end());
  EXPECT_EQ(rc_nbrs, (std::vector<int32_t>{ra, rb}));

  // Absorb the center into ra: its leaves now have no foreign neighbor,
  // so the only boundary area of ra is the center itself.
  p.Move(0, ra);
  EXPECT_EQ(p.NeighborRegionsOfArea(0), (std::vector<int32_t>{rb}));
  EXPECT_EQ(p.NeighborRegionsOf(ra), (std::vector<int32_t>{rb}));
  EXPECT_EQ(p.BoundaryAreas(ra), (std::vector<int32_t>{0}));
  // A leaf inside ra has no neighbor regions at all.
  EXPECT_TRUE(p.NeighborRegionsOfArea(1).empty());
}

TEST_F(PartitionTest, CompactAssignmentSkipsDeadRegions) {
  Partition p(&bound_);
  int32_t r1 = p.CreateRegion();
  int32_t r2 = p.CreateRegion();
  int32_t r3 = p.CreateRegion();
  p.Assign(0, r1);
  p.Assign(1, r2);
  p.Assign(2, r3);
  p.DissolveRegion(r2);
  auto compact = p.CompactAssignment();
  EXPECT_EQ(compact[0], 0);
  EXPECT_EQ(compact[1], -1);
  EXPECT_EQ(compact[2], 1);  // r3 renumbered to 1
  EXPECT_EQ(compact[5], -1);
}

}  // namespace
}  // namespace emp
