#ifndef EMP_TESTS_TEST_UTIL_H_
#define EMP_TESTS_TEST_UTIL_H_

#include <map>
#include <string>
#include <utility>
#include <vector>

#include "data/area_set.h"

namespace emp {
namespace test {

/// Builds a rook-adjacency grid graph with rows*cols nodes (row-major ids).
inline ContiguityGraph GridGraph(int32_t rows, int32_t cols) {
  std::vector<std::pair<int32_t, int32_t>> edges;
  for (int32_t r = 0; r < rows; ++r) {
    for (int32_t c = 0; c < cols; ++c) {
      int32_t id = r * cols + c;
      if (c + 1 < cols) edges.push_back({id, id + 1});
      if (r + 1 < rows) edges.push_back({id, id + cols});
    }
  }
  return std::move(ContiguityGraph::FromEdges(rows * cols, edges)).value();
}

/// Builds a path graph 0-1-...-(n-1).
inline ContiguityGraph PathGraph(int32_t n) {
  std::vector<std::pair<int32_t, int32_t>> edges;
  for (int32_t i = 0; i + 1 < n; ++i) edges.push_back({i, i + 1});
  return std::move(ContiguityGraph::FromEdges(n, edges)).value();
}

/// Builds a geometry-less area set over an arbitrary graph with the given
/// named attribute columns. The first column doubles as the dissimilarity
/// attribute unless `dissimilarity` is given.
inline AreaSet MakeAreaSet(
    ContiguityGraph graph,
    std::vector<std::pair<std::string, std::vector<double>>> columns,
    std::string dissimilarity = "") {
  AttributeTable table(graph.num_nodes());
  std::string diss =
      dissimilarity.empty() ? columns.front().first : dissimilarity;
  for (auto& [name, values] : columns) {
    auto st = table.AddColumn(name, std::move(values));
    if (!st.ok()) std::abort();
  }
  auto areas = AreaSet::CreateWithoutGeometry("test", std::move(graph),
                                              std::move(table), diss);
  if (!areas.ok()) std::abort();
  return std::move(areas).value();
}

/// Path area set with one attribute "s" (also the dissimilarity attribute).
inline AreaSet PathAreaSet(std::vector<double> s) {
  int32_t n = static_cast<int32_t>(s.size());
  return MakeAreaSet(PathGraph(n), {{"s", std::move(s)}});
}

}  // namespace test
}  // namespace emp

#endif  // EMP_TESTS_TEST_UTIL_H_
