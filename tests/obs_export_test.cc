#include "obs/export.h"

#include <cstdlib>

#include <gtest/gtest.h>

#include "common/csv.h"
#include "common/json.h"
#include "obs/metrics.h"

namespace emp {
namespace obs {
namespace {

/// The fixed registry state behind the golden files. Regenerate the
/// fixtures by running this test with EMP_REGENERATE_GOLDEN=1 in the
/// environment, then inspect the diff.
void FillGoldenRegistry(MetricRegistry* registry) {
  registry
      ->GetCounter("emp_tabu_iterations_total",
                   "Tabu iterations executed across the local search.")
      ->Add(41);
  registry->GetCounter("emp_construction_iterations_total")->Add(3);
  registry
      ->GetGauge("emp_construction_best_p",
                 "Largest feasible p found by construction.")
      ->Set(12);
  registry->GetGauge("emp_tabu_final_heterogeneity")->Set(1234.5625);
  Histogram* h = registry->GetHistogram("emp_construction_iteration_seconds",
                                        {0.001, 0.01, 0.1});
  h->Observe(0.0005);
  h->Observe(0.05);
  h->Observe(0.05);
  h->Observe(2.0);
  Summary* s = registry->GetSummary(
      "emp_service_solve_ms", /*eps=*/0.005,
      "Solve time per terminal job, milliseconds.");
  for (int i = 1; i <= 100; ++i) s->Observe(i);
  // An empty summary: quantiles must export as null / NaN, not crash.
  registry->GetSummary("emp_service_empty_ms");
}

std::string FixturePath(const std::string& name) {
  return std::string(EMP_TEST_FIXTURE_DIR) + "/golden/" + name;
}

void CompareToGolden(const std::string& actual, const std::string& fixture) {
  if (std::getenv("EMP_REGENERATE_GOLDEN") != nullptr) {
    ASSERT_TRUE(WriteFile(FixturePath(fixture), actual).ok());
    GTEST_SKIP() << "regenerated " << fixture;
  }
  auto expected = ReadFile(FixturePath(fixture));
  ASSERT_TRUE(expected.ok()) << expected.status().ToString();
  EXPECT_EQ(actual, *expected) << "golden mismatch for " << fixture
                               << "; rerun with EMP_REGENERATE_GOLDEN=1 if "
                                  "the change is intended";
}

TEST(MetricsExportTest, JsonMatchesGoldenFile) {
  MetricRegistry registry;
  FillGoldenRegistry(&registry);
  CompareToGolden(MetricsToJson(registry), "metrics_export.json");
}

TEST(MetricsExportTest, PrometheusMatchesGoldenFile) {
  MetricRegistry registry;
  FillGoldenRegistry(&registry);
  CompareToGolden(MetricsToPrometheus(registry), "metrics_export.prom");
}

TEST(MetricsExportTest, JsonRoundTripsThroughParser) {
  MetricRegistry registry;
  FillGoldenRegistry(&registry);
  auto doc = json::Parse(MetricsToJson(registry));
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();

  const json::Value* counters = doc->Find("counters");
  ASSERT_NE(counters, nullptr);
  EXPECT_EQ(counters->Find("emp_tabu_iterations_total")->AsNumber(), 41);

  const json::Value* gauges = doc->Find("gauges");
  ASSERT_NE(gauges, nullptr);
  EXPECT_EQ(gauges->Find("emp_construction_best_p")->AsNumber(), 12);

  const json::Value* hist =
      doc->Find("histograms")->Find("emp_construction_iteration_seconds");
  ASSERT_NE(hist, nullptr);
  EXPECT_EQ(hist->Find("count")->AsNumber(), 4);
  const auto& buckets = hist->Find("buckets")->AsArray();
  ASSERT_EQ(buckets.size(), 4u);  // 3 bounds + +Inf
  EXPECT_EQ(buckets[0].Find("count")->AsNumber(), 1);
  EXPECT_EQ(buckets[2].Find("count")->AsNumber(), 2);
  EXPECT_EQ(buckets[3].Find("le")->AsString(), "+Inf");
  EXPECT_EQ(buckets[3].Find("count")->AsNumber(), 1);
}

TEST(MetricsExportTest, SummariesRoundTripInBothFormats) {
  MetricRegistry registry;
  FillGoldenRegistry(&registry);

  auto doc = json::Parse(MetricsToJson(registry));
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  const json::Value* summary =
      doc->Find("summaries")->Find("emp_service_solve_ms");
  ASSERT_NE(summary, nullptr);
  EXPECT_EQ(summary->Find("count")->AsNumber(), 100);
  EXPECT_DOUBLE_EQ(summary->Find("sum")->AsNumber(), 5050.0);
  const auto& quantiles = summary->Find("quantiles")->AsArray();
  ASSERT_EQ(quantiles.size(), 3u);
  EXPECT_EQ(quantiles[0].Find("quantile")->AsNumber(), 0.5);
  // 100 uniform samples at eps 0.005: the p50 estimate is exact ±1.
  EXPECT_NEAR(quantiles[0].Find("value")->AsNumber(), 50.0, 1.0);
  EXPECT_EQ(quantiles[2].Find("quantile")->AsNumber(), 0.99);
  // The empty summary exports null quantile values, not garbage.
  const json::Value* empty =
      doc->Find("summaries")->Find("emp_service_empty_ms");
  ASSERT_NE(empty, nullptr);
  EXPECT_EQ(empty->Find("count")->AsNumber(), 0);
  EXPECT_TRUE(empty->Find("quantiles")->AsArray()[0].Find("value")
                  ->is_null());

  const std::string prom = MetricsToPrometheus(registry);
  EXPECT_NE(prom.find("# TYPE emp_service_solve_ms summary"),
            std::string::npos);
  EXPECT_NE(prom.find("emp_service_solve_ms{quantile=\"0.5\"}"),
            std::string::npos);
  EXPECT_NE(prom.find("emp_service_solve_ms{quantile=\"0.99\"}"),
            std::string::npos);
  EXPECT_NE(prom.find("emp_service_solve_ms_sum 5050"), std::string::npos);
  EXPECT_NE(prom.find("emp_service_solve_ms_count 100"),
            std::string::npos);
  // Prometheus renders empty-summary quantiles as NaN samples.
  EXPECT_NE(prom.find("emp_service_empty_ms{quantile=\"0.5\"} NaN"),
            std::string::npos);
}

TEST(MetricsExportTest, PrometheusBucketsAreCumulative) {
  MetricRegistry registry;
  FillGoldenRegistry(&registry);
  std::string text = MetricsToPrometheus(registry);
  EXPECT_NE(text.find("# TYPE emp_tabu_iterations_total counter"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE emp_construction_best_p gauge"),
            std::string::npos);
  EXPECT_NE(
      text.find(
          "emp_construction_iteration_seconds_bucket{le=\"0.001\"} 1"),
      std::string::npos);
  // Cumulative: the 0.1 bucket includes the two 0.05 observations plus the
  // one below 0.001.
  EXPECT_NE(
      text.find("emp_construction_iteration_seconds_bucket{le=\"0.1\"} 3"),
      std::string::npos);
  EXPECT_NE(
      text.find("emp_construction_iteration_seconds_bucket{le=\"+Inf\"} 4"),
      std::string::npos);
  EXPECT_NE(text.find("emp_construction_iteration_seconds_count 4"),
            std::string::npos);
}

TEST(MetricsExportTest, PrometheusEmitsRegisteredHelp) {
  MetricRegistry registry;
  FillGoldenRegistry(&registry);
  std::string text = MetricsToPrometheus(registry);
  // HELP precedes TYPE for the same metric.
  size_t help = text.find(
      "# HELP emp_tabu_iterations_total Tabu iterations executed across "
      "the local search.");
  size_t type = text.find("# TYPE emp_tabu_iterations_total counter");
  ASSERT_NE(help, std::string::npos);
  ASSERT_NE(type, std::string::npos);
  EXPECT_LT(help, type);
  // Metrics without registered help get no HELP line at all.
  EXPECT_EQ(text.find("# HELP emp_construction_iterations_total"),
            std::string::npos);
}

TEST(MetricsExportTest, HelpRegistrationIsFirstNonEmptyWins) {
  MetricRegistry registry;
  registry.GetCounter("emp_x_total");  // no help yet
  registry.GetCounter("emp_x_total", "First description.");
  registry.GetCounter("emp_x_total", "Second description, ignored.");
  std::string text = MetricsToPrometheus(registry);
  EXPECT_NE(text.find("# HELP emp_x_total First description."),
            std::string::npos);
  EXPECT_EQ(text.find("Second description"), std::string::npos);
}

TEST(MetricsExportTest, HelpEscapesBackslashAndNewline) {
  MetricRegistry registry;
  registry.GetGauge("emp_weird", "line one\nline two \\ backslash");
  std::string text = MetricsToPrometheus(registry);
  EXPECT_NE(
      text.find("# HELP emp_weird line one\\nline two \\\\ backslash\n"),
      std::string::npos);
  // The raw newline must not survive into the exposition line.
  EXPECT_EQ(text.find("line one\nline two"), std::string::npos);
}

TEST(MetricsExportTest, EmptyRegistryExports) {
  MetricRegistry registry;
  auto doc = json::Parse(MetricsToJson(registry));
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  EXPECT_TRUE(doc->Find("counters")->is_object());
  EXPECT_EQ(MetricsToPrometheus(registry), "");
}

}  // namespace
}  // namespace obs
}  // namespace emp
