#include "common/str_util.h"

#include <gtest/gtest.h>

namespace emp {
namespace {

TEST(SplitTest, BasicSplit) {
  auto parts = Split("a,b,c", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "c");
}

TEST(SplitTest, KeepsEmptyFields) {
  auto parts = Split("a,,c,", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[3], "");
}

TEST(SplitTest, NoDelimiterYieldsSingleField) {
  auto parts = Split("abc", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "abc");
}

TEST(StripWhitespaceTest, StripsBothEnds) {
  EXPECT_EQ(StripWhitespace("  x y \t\n"), "x y");
  EXPECT_EQ(StripWhitespace(""), "");
  EXPECT_EQ(StripWhitespace(" \t "), "");
}

TEST(ParseDoubleTest, ParsesValidNumbers) {
  EXPECT_DOUBLE_EQ(*ParseDouble("3.25"), 3.25);
  EXPECT_DOUBLE_EQ(*ParseDouble("-1e3"), -1000.0);
  EXPECT_DOUBLE_EQ(*ParseDouble("  42 "), 42.0);
}

TEST(ParseDoubleTest, RejectsGarbage) {
  EXPECT_FALSE(ParseDouble("").ok());
  EXPECT_FALSE(ParseDouble("abc").ok());
  EXPECT_FALSE(ParseDouble("1.5x").ok());
}

TEST(ParseInt64Test, ParsesValidIntegers) {
  EXPECT_EQ(*ParseInt64("123"), 123);
  EXPECT_EQ(*ParseInt64("-5"), -5);
}

TEST(ParseInt64Test, RejectsGarbage) {
  EXPECT_FALSE(ParseInt64("").ok());
  EXPECT_FALSE(ParseInt64("12.5").ok());
  EXPECT_FALSE(ParseInt64("9999999999999999999999").ok());
}

TEST(JoinTest, JoinsWithSeparator) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(Join({"x"}, ","), "x");
}

TEST(StartsWithTest, Basics) {
  EXPECT_TRUE(StartsWith("POLYGON ((", "POLYGON"));
  EXPECT_FALSE(StartsWith("PO", "POLYGON"));
}

TEST(FormatDoubleTest, IntegersHaveNoDecimals) {
  EXPECT_EQ(FormatDouble(3.0), "3");
  EXPECT_EQ(FormatDouble(-120.0), "-120");
}

TEST(FormatDoubleTest, TrimsTrailingZeros) {
  EXPECT_EQ(FormatDouble(3.5, 3), "3.5");
  EXPECT_EQ(FormatDouble(3.125, 3), "3.125");
  EXPECT_EQ(FormatDouble(0.1, 3), "0.1");
}

}  // namespace
}  // namespace emp
