#include "geometry/clip.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

namespace emp {
namespace {

TaggedConvexPolygon UnitSquareTagged() {
  return MakeTagged(Polygon({{0, 0}, {1, 0}, {1, 1}, {0, 1}}));
}

TEST(HalfPlaneTest, InsideTest) {
  // x <= 0.5
  HalfPlane hp{{1, 0}, 0.5, 7};
  EXPECT_TRUE(hp.Inside({0.2, 0.9}));
  EXPECT_TRUE(hp.Inside({0.5, 0.0}));
  EXPECT_FALSE(hp.Inside({0.7, 0.0}));
}

TEST(PerpendicularBisectorTest, MidpointOnBoundaryCloserSideInside) {
  HalfPlane hp = PerpendicularBisector({0, 0}, {2, 0}, 3);
  EXPECT_EQ(hp.tag, 3);
  EXPECT_TRUE(hp.Inside({0.5, 1.0}));   // closer to (0,0)
  EXPECT_FALSE(hp.Inside({1.5, 1.0}));  // closer to (2,0)
  // Equidistant point sits on the boundary (Inside uses <= with eps).
  EXPECT_TRUE(hp.Inside({1.0, 5.0}));
}

TEST(ClipConvexTest, ClipSquareInHalf) {
  TaggedConvexPolygon poly = UnitSquareTagged();
  HalfPlane hp{{1, 0}, 0.5, 42};  // keep x <= 0.5
  TaggedConvexPolygon out = ClipConvex(poly, hp);
  ASSERT_FALSE(out.empty());
  EXPECT_NEAR(out.ToPolygon().Area(), 0.5, 1e-12);
  // The new cut edge must carry the half-plane's tag.
  bool has_tag = false;
  for (int64_t t : out.edge_tags) {
    if (t == 42) has_tag = true;
  }
  EXPECT_TRUE(has_tag);
}

TEST(ClipConvexTest, NoOpWhenFullyInside) {
  TaggedConvexPolygon poly = UnitSquareTagged();
  HalfPlane hp{{1, 0}, 5.0, 1};  // x <= 5 keeps everything
  TaggedConvexPolygon out = ClipConvex(poly, hp);
  EXPECT_NEAR(out.ToPolygon().Area(), 1.0, 1e-12);
  for (int64_t t : out.edge_tags) EXPECT_EQ(t, -1);
}

TEST(ClipConvexTest, EmptyWhenFullyOutside) {
  TaggedConvexPolygon poly = UnitSquareTagged();
  HalfPlane hp{{1, 0}, -1.0, 1};  // x <= -1 removes everything
  EXPECT_TRUE(ClipConvex(poly, hp).empty());
}

TEST(ClipConvexTest, DiagonalCutPreservesCcwAndArea) {
  TaggedConvexPolygon poly = UnitSquareTagged();
  // Keep x + y <= 1 (cut off the upper-right triangle).
  HalfPlane hp{{1, 1}, 1.0, 9};
  TaggedConvexPolygon out = ClipConvex(poly, hp);
  Polygon p = out.ToPolygon();
  EXPECT_NEAR(p.Area(), 0.5, 1e-12);
  EXPECT_GT(p.SignedArea(), 0);  // stays counter-clockwise
}

TEST(ClipConvexTest, SequentialClipsCompose) {
  TaggedConvexPolygon poly = UnitSquareTagged();
  std::vector<HalfPlane> planes = {
      {{1, 0}, 0.75, 1},    // x <= 0.75
      {{-1, 0}, -0.25, 2},  // x >= 0.25
      {{0, 1}, 0.75, 3},    // y <= 0.75
      {{0, -1}, -0.25, 4},  // y >= 0.25
  };
  TaggedConvexPolygon out = ClipConvex(poly, planes);
  EXPECT_NEAR(out.ToPolygon().Area(), 0.25, 1e-12);
  // All four cut tags present.
  std::set<int64_t> tags(out.edge_tags.begin(), out.edge_tags.end());
  for (int64_t t : {1, 2, 3, 4}) EXPECT_TRUE(tags.count(t)) << t;
}

TEST(ClipConvexTest, VertexCountStaysConsistentWithTags) {
  TaggedConvexPolygon poly = UnitSquareTagged();
  HalfPlane hp{{1, 1}, 1.2, 5};
  TaggedConvexPolygon out = ClipConvex(poly, hp);
  EXPECT_EQ(out.vertices.size(), out.edge_tags.size());
}

TEST(ClipConvexTest, DegenerateInputReturnsEmpty) {
  TaggedConvexPolygon tiny;
  tiny.vertices = {{0, 0}, {1, 0}};
  tiny.edge_tags = {-1, -1};
  EXPECT_TRUE(ClipConvex(tiny, HalfPlane{{1, 0}, 10.0, 1}).empty());
}

}  // namespace
}  // namespace emp
