#include "core/construction/monotonic_adjust.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace emp {
namespace {

struct AdjustSetup {
  AdjustSetup(const AreaSet* areas_in, std::vector<Constraint> cs)
      : areas(areas_in),
        bound(std::move(BoundConstraints::Create(areas_in, std::move(cs)))
                  .value()),
        partition(&bound),
        connectivity(&areas_in->graph()) {}

  Status Adjust() {
    return AdjustForCounting(&connectivity, &partition, &stats);
  }

  const AreaSet* areas;
  BoundConstraints bound;
  Partition partition;
  ConnectivityChecker connectivity;
  MonotonicAdjustStats stats;
};

TEST(MonotonicAdjustTest, NoCountingConstraintsIsNoOp) {
  AreaSet areas = test::PathAreaSet({1, 2, 3});
  AdjustSetup setup(&areas, {Constraint::Min("s", 0, 10)});
  int32_t r = setup.partition.CreateRegion();
  setup.partition.Assign(0, r);
  ASSERT_TRUE(setup.Adjust().ok());
  EXPECT_EQ(setup.stats.swaps + setup.stats.merges + setup.stats.removals, 0);
  EXPECT_EQ(setup.partition.NumRegions(), 1);
}

TEST(MonotonicAdjustTest, SwapFixesUnderBoundReceiver) {
  // Path: 10 - 10 - 10 - 3. Region A = {0,1,2} (sum 30), B = {3} (sum 3).
  // SUM >= 10: B is under-bound; swapping area 2 (s=10) from A fixes B
  // while A keeps 20.
  AreaSet areas = test::PathAreaSet({10, 10, 10, 3});
  AdjustSetup setup(&areas, {Constraint::Sum("s", 10, kNoUpperBound)});
  int32_t ra = setup.partition.CreateRegion();
  int32_t rb = setup.partition.CreateRegion();
  for (int32_t a : {0, 1, 2}) setup.partition.Assign(a, ra);
  setup.partition.Assign(3, rb);
  ASSERT_TRUE(setup.Adjust().ok());
  EXPECT_EQ(setup.stats.swaps, 1);
  EXPECT_EQ(setup.partition.NumRegions(), 2);
  for (int32_t rid : setup.partition.AliveRegionIds()) {
    EXPECT_TRUE(setup.partition.region(rid).stats.SatisfiesAll());
  }
  EXPECT_EQ(setup.partition.RegionOf(2), rb);
}

TEST(MonotonicAdjustTest, SwapRefusedWhenDonorWouldDisconnect) {
  // Path: 10 - 3 - 10 with region A = {0, 1, 2}: moving area 1 to B would
  // disconnect A. Region B = {3}, threshold 10.
  //   layout: A: 0-1-2, B: 3 attached to 1? Build a star: center 1.
  auto graph =
      ContiguityGraph::FromEdges(4, {{0, 1}, {1, 2}, {1, 3}});
  AreaSet areas = test::MakeAreaSet(std::move(graph).value(),
                                    {{"s", {4, 11, 4, 3}}});
  AdjustSetup setup(&areas, {Constraint::Sum("s", 10, kNoUpperBound)});
  int32_t ra = setup.partition.CreateRegion();
  int32_t rb = setup.partition.CreateRegion();
  for (int32_t a : {0, 1, 2}) setup.partition.Assign(a, ra);
  setup.partition.Assign(3, rb);
  ASSERT_TRUE(setup.Adjust().ok());
  // Area 1 is the only neighbor of B but is a cut vertex of A and besides
  // donor would drop to 8 < 10. No swap possible; B merges into A instead.
  EXPECT_EQ(setup.stats.swaps, 0);
  EXPECT_EQ(setup.partition.NumRegions(), 1);
  EXPECT_EQ(setup.stats.merges, 1);
}

TEST(MonotonicAdjustTest, MergeFixesUnderBoundWhenNoSwapWorks) {
  // Two adjacent singleton regions, each sum 6 < 10; merged sum 12 OK.
  AreaSet areas = test::PathAreaSet({6, 6});
  AdjustSetup setup(&areas, {Constraint::Sum("s", 10, kNoUpperBound)});
  int32_t ra = setup.partition.CreateRegion();
  int32_t rb = setup.partition.CreateRegion();
  setup.partition.Assign(0, ra);
  setup.partition.Assign(1, rb);
  ASSERT_TRUE(setup.Adjust().ok());
  EXPECT_EQ(setup.partition.NumRegions(), 1);
  EXPECT_EQ(setup.stats.merges, 1);
  for (int32_t rid : setup.partition.AliveRegionIds()) {
    EXPECT_TRUE(setup.partition.region(rid).stats.SatisfiesAll());
  }
}

TEST(MonotonicAdjustTest, RemovalFixesOverUpperBound) {
  // Region {0,1,2} sums to 30 with cap 25: evict a boundary area.
  AreaSet areas = test::PathAreaSet({10, 10, 10});
  AdjustSetup setup(&areas, {Constraint::Sum("s", 5, 25)});
  int32_t r = setup.partition.CreateRegion();
  for (int32_t a : {0, 1, 2}) setup.partition.Assign(a, r);
  ASSERT_TRUE(setup.Adjust().ok());
  EXPECT_EQ(setup.stats.removals, 1);
  EXPECT_EQ(setup.partition.NumRegions(), 1);
  EXPECT_EQ(setup.partition.region(r).size(), 2);
  EXPECT_TRUE(setup.partition.region(r).stats.SatisfiesAll());
  EXPECT_EQ(setup.partition.UnassignedAreas().size(), 1u);
}

TEST(MonotonicAdjustTest, CountUpperBoundTriggersRemovals) {
  AreaSet areas = test::PathAreaSet({1, 1, 1, 1, 1});
  AdjustSetup setup(&areas, {Constraint::Count(1, 3)});
  int32_t r = setup.partition.CreateRegion();
  for (int32_t a = 0; a < 5; ++a) setup.partition.Assign(a, r);
  ASSERT_TRUE(setup.Adjust().ok());
  EXPECT_EQ(setup.partition.region(r).size(), 3);
  EXPECT_EQ(setup.stats.removals, 2);
}

TEST(MonotonicAdjustTest, InfeasibleRegionIsDissolved) {
  // Isolated region with sum 4 < 10 and no neighbors: dissolve.
  auto graph = ContiguityGraph::FromEdges(3, {{0, 1}});
  AreaSet areas =
      test::MakeAreaSet(std::move(graph).value(), {{"s", {2, 2, 50}}});
  AdjustSetup setup(&areas, {Constraint::Sum("s", 10, kNoUpperBound)});
  int32_t r = setup.partition.CreateRegion();
  setup.partition.Assign(0, r);
  setup.partition.Assign(1, r);
  ASSERT_TRUE(setup.Adjust().ok());
  EXPECT_EQ(setup.partition.NumRegions(), 0);
  EXPECT_EQ(setup.stats.regions_dissolved, 1);
}

TEST(MonotonicAdjustTest, PreservesCentralityWhileSwapping) {
  // Receiver must not accept an area that breaks its AVG constraint even
  // when the SUM lower bound wants more mass.
  // Path: 5 - 5 - 20 - 5. A = {0,1,2} B = {3}. AVG in [4, 6], SUM >= 10.
  // B (avg 5, sum 5) needs mass; only neighbor area is 2 (s=20), which
  // would push B's avg to 12.5 -> forbidden. B merges with A instead?
  // Merged avg = 35/4 = 8.75 > 6 -> forbidden too. B dissolves.
  AreaSet areas = test::PathAreaSet({5, 5, 20, 5});
  AdjustSetup setup(&areas, {Constraint::Avg("s", 4, 6),
                             Constraint::Sum("s", 10, kNoUpperBound)});
  int32_t ra = setup.partition.CreateRegion();
  int32_t rb = setup.partition.CreateRegion();
  for (int32_t a : {0, 1, 2}) setup.partition.Assign(a, ra);
  setup.partition.Assign(3, rb);
  ASSERT_TRUE(setup.Adjust().ok());
  // B was dissolved; A remains (sum 30, avg 10 — wait, A violates AVG).
  // A's avg = 30/3 = 10 > 6, so A is dissolved as well by phase D.
  EXPECT_EQ(setup.partition.NumRegions(), 0);
}

TEST(MonotonicAdjustTest, AllRegionsSatisfyAllConstraintsOnReturn) {
  AreaSet areas = test::MakeAreaSet(
      test::GridGraph(4, 4),
      {{"s", {5, 9, 2, 7, 3, 8, 6, 4, 9, 2, 7, 5, 4, 6, 8, 3}}});
  AdjustSetup setup(&areas, {Constraint::Sum("s", 15, 40),
                             Constraint::Count(2, 6)});
  // Seed a deliberately unbalanced partition.
  int32_t r0 = setup.partition.CreateRegion();
  int32_t r1 = setup.partition.CreateRegion();
  int32_t r2 = setup.partition.CreateRegion();
  for (int32_t a : {0, 1, 2, 3, 4, 5, 6, 7}) setup.partition.Assign(a, r0);
  for (int32_t a : {8, 9}) setup.partition.Assign(a, r1);
  for (int32_t a : {12, 13}) setup.partition.Assign(a, r2);
  ASSERT_TRUE(setup.Adjust().ok());
  for (int32_t rid : setup.partition.AliveRegionIds()) {
    EXPECT_TRUE(setup.partition.region(rid).stats.SatisfiesAll())
        << "region " << rid;
    EXPECT_TRUE(
        setup.connectivity.IsConnected(setup.partition.region(rid).areas));
  }
  EXPECT_TRUE(setup.partition.ValidateInvariants().ok());
}

}  // namespace
}  // namespace emp
