#include "core/run_context.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "core/solver_options.h"

namespace emp {
namespace {

TEST(TerminationReasonTest, NamesAreCanonical) {
  EXPECT_EQ(TerminationReasonName(TerminationReason::kConverged), "converged");
  EXPECT_EQ(TerminationReasonName(TerminationReason::kDeadlineExceeded),
            "deadline-exceeded");
  EXPECT_EQ(TerminationReasonName(TerminationReason::kCancelled), "cancelled");
  EXPECT_EQ(TerminationReasonName(TerminationReason::kBudgetExhausted),
            "budget-exhausted");
  EXPECT_EQ(TerminationReasonName(TerminationReason::kFaultInjected),
            "fault-injected");
}

TEST(DeadlineTest, DefaultNeverExpires) {
  Deadline d;
  EXPECT_TRUE(d.infinite());
  EXPECT_FALSE(d.Expired());
  EXPECT_TRUE(d.RemainingMillis() > 1e18);
}

TEST(DeadlineTest, NegativeMillisMeansInfinite) {
  EXPECT_TRUE(Deadline::AfterMillis(-1).infinite());
  EXPECT_TRUE(Deadline::AfterMillis(-100).infinite());
}

TEST(DeadlineTest, ZeroMillisExpiresImmediately) {
  Deadline d = Deadline::AfterMillis(0);
  EXPECT_FALSE(d.infinite());
  EXPECT_TRUE(d.Expired());
  EXPECT_LE(d.RemainingMillis(), 0.0);
}

TEST(DeadlineTest, FutureDeadlineNotYetExpired) {
  Deadline d = Deadline::AfterMillis(60'000);
  EXPECT_FALSE(d.Expired());
  EXPECT_GT(d.RemainingMillis(), 0.0);
}

TEST(CancellationTokenTest, CopiesShareTheFlag) {
  CancellationToken a;
  CancellationToken b = a;
  EXPECT_FALSE(a.cancelled());
  EXPECT_FALSE(b.cancelled());
  b.Cancel();
  EXPECT_TRUE(a.cancelled());
  EXPECT_TRUE(b.cancelled());
}

TEST(CancellationTokenTest, CancelFromAnotherThreadIsObserved) {
  CancellationToken token;
  std::thread t([token]() mutable { token.Cancel(); });
  t.join();
  EXPECT_TRUE(token.cancelled());
}

TEST(PhaseSupervisorTest, NullContextNeverTrips) {
  PhaseSupervisor supervisor(nullptr, "test");
  for (int i = 0; i < 1000; ++i) {
    EXPECT_FALSE(supervisor.Check().has_value());
  }
  EXPECT_FALSE(supervisor.tripped().has_value());
  EXPECT_EQ(supervisor.checkpoints(), 1000);
}

TEST(PhaseSupervisorTest, UnboundedContextNeverTrips) {
  RunContext ctx;
  PhaseSupervisor supervisor(&ctx, "test");
  for (int i = 0; i < 1000; ++i) {
    EXPECT_FALSE(supervisor.Check().has_value());
  }
  EXPECT_FALSE(supervisor.tripped().has_value());
}

TEST(PhaseSupervisorTest, ExpiredDeadlineTripsOnFirstCheckpoint) {
  RunContext ctx;
  ctx.deadline = Deadline::AfterMillis(0);
  PhaseSupervisor supervisor(&ctx, "test");
  auto verdict = supervisor.Check();
  ASSERT_TRUE(verdict.has_value());
  EXPECT_EQ(*verdict, TerminationReason::kDeadlineExceeded);
}

TEST(PhaseSupervisorTest, DeadlineIsOnlyReadOnTheStride) {
  // An expired deadline installed after checkpoint 0 is noticed at the
  // next stride multiple, not in between.
  RunContext ctx;
  ctx.deadline = Deadline::AfterMillis(0);
  PhaseSupervisor supervisor(&ctx, "test", /*worker=*/0,
                             /*time_check_stride=*/8);
  // Checkpoint 0 is a stride point: trips right away with stride 8 too.
  EXPECT_TRUE(supervisor.Check().has_value());
}

TEST(PhaseSupervisorTest, CancellationTripsAtNextCheckpoint) {
  RunContext ctx;
  PhaseSupervisor supervisor(&ctx, "test");
  EXPECT_FALSE(supervisor.Check().has_value());
  ctx.cancel.Cancel();
  auto verdict = supervisor.Check();
  ASSERT_TRUE(verdict.has_value());
  EXPECT_EQ(*verdict, TerminationReason::kCancelled);
}

TEST(PhaseSupervisorTest, VerdictIsSticky) {
  RunContext ctx;
  ctx.cancel.Cancel();
  PhaseSupervisor supervisor(&ctx, "test");
  EXPECT_EQ(supervisor.Check(), TerminationReason::kCancelled);
  // Un-cancelling cannot happen in the API; the sticky verdict also
  // survives any later state: every Check keeps returning it.
  EXPECT_EQ(supervisor.Check(), TerminationReason::kCancelled);
  EXPECT_EQ(supervisor.tripped(), TerminationReason::kCancelled);
}

TEST(PhaseSupervisorTest, BudgetTripsDeterministically) {
  RunContext ctx;
  ctx.max_evaluations = 10;
  PhaseSupervisor supervisor(&ctx, "test");
  int allowed = 0;
  for (int i = 0; i < 100; ++i) {
    if (supervisor.Check()) break;
    ++allowed;
  }
  // Exactly 10 one-evaluation checkpoints pass; the 11th trips.
  EXPECT_EQ(allowed, 10);
  EXPECT_EQ(supervisor.tripped(), TerminationReason::kBudgetExhausted);
  EXPECT_GE(ctx.evaluations(), 10);
}

TEST(PhaseSupervisorTest, BudgetIsSharedAcrossSupervisors) {
  RunContext ctx;
  ctx.max_evaluations = 10;
  {
    PhaseSupervisor first(&ctx, "phase-one");
    for (int i = 0; i < 6; ++i) EXPECT_FALSE(first.Check().has_value());
  }
  PhaseSupervisor second(&ctx, "phase-two");
  int allowed = 0;
  for (int i = 0; i < 100; ++i) {
    if (second.Check()) break;
    ++allowed;
  }
  EXPECT_EQ(allowed, 4) << "phase two must inherit phase one's spending";
}

TEST(PhaseSupervisorTest, EvaluationsAreFlushedWithoutBudget) {
  RunContext ctx;  // max_evaluations = -1: telemetry only.
  {
    PhaseSupervisor supervisor(&ctx, "test", /*worker=*/0,
                               /*time_check_stride=*/64);
    for (int i = 0; i < 100; ++i) supervisor.Check(3);
  }  // Destructor flushes the non-stride remainder.
  EXPECT_EQ(ctx.evaluations(), 300);
}

TEST(PhaseSupervisorTest, FaultHookFiresAtExactCheckpoint) {
  RunContext ctx;
  std::vector<int64_t> seen;
  ctx.fault_hook =
      [&seen](const SupervisionCheckpoint& cp)
      -> std::optional<TerminationReason> {
    seen.push_back(cp.index);
    if (cp.phase == "target" && cp.index == 5) {
      return TerminationReason::kFaultInjected;
    }
    return std::nullopt;
  };
  PhaseSupervisor other(&ctx, "other");
  for (int i = 0; i < 8; ++i) {
    EXPECT_FALSE(other.Check().has_value()) << "wrong phase must not trip";
  }
  PhaseSupervisor target(&ctx, "target");
  int allowed = 0;
  while (!target.Check()) ++allowed;
  EXPECT_EQ(allowed, 5);
  EXPECT_EQ(target.tripped(), TerminationReason::kFaultInjected);
}

TEST(PhaseSupervisorTest, FaultHookReasonPropagatesVerbatim) {
  RunContext ctx;
  ctx.fault_hook = [](const SupervisionCheckpoint&)
      -> std::optional<TerminationReason> {
    return TerminationReason::kDeadlineExceeded;  // Simulated deadline.
  };
  PhaseSupervisor supervisor(&ctx, "test");
  EXPECT_EQ(supervisor.Check(), TerminationReason::kDeadlineExceeded);
}

TEST(PhaseSupervisorTest, FaultHookSeesWorkerId) {
  RunContext ctx;
  ctx.fault_hook = [](const SupervisionCheckpoint& cp)
      -> std::optional<TerminationReason> {
    if (cp.worker == 2) return TerminationReason::kFaultInjected;
    return std::nullopt;
  };
  PhaseSupervisor w0(&ctx, "construction", /*worker=*/0);
  PhaseSupervisor w2(&ctx, "construction", /*worker=*/2);
  EXPECT_FALSE(w0.Check().has_value());
  EXPECT_TRUE(w2.Check().has_value());
}

TEST(PhaseSupervisorTest, ProgressFiresOnStride) {
  RunContext ctx;
  int events = 0;
  ctx.progress = [&events](const ProgressEvent&) { ++events; };
  PhaseSupervisor supervisor(&ctx, "test", /*worker=*/0,
                             /*time_check_stride=*/10);
  for (int i = 0; i < 25; ++i) supervisor.Check();
  EXPECT_EQ(events, 3) << "stride points 0, 10, 20";
}

TEST(MakeRunContextTest, TranslatesBudgetFields) {
  SolverOptions options;
  options.time_budget_ms = -1;
  options.max_evaluations = -1;
  RunContext unlimited = MakeRunContext(options);
  EXPECT_TRUE(unlimited.deadline.infinite());
  EXPECT_EQ(unlimited.max_evaluations, -1);

  options.time_budget_ms = 5'000;
  options.max_evaluations = 123;
  RunContext bounded = MakeRunContext(options);
  EXPECT_FALSE(bounded.deadline.infinite());
  EXPECT_GT(bounded.deadline.RemainingMillis(), 0.0);
  EXPECT_EQ(bounded.max_evaluations, 123);
}

}  // namespace
}  // namespace emp
