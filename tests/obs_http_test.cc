#include "obs/http_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/json.h"
#include "core/fact_solver.h"
#include "obs/metrics.h"
#include "obs/progress.h"
#include "test_util.h"

namespace emp {
namespace obs {
namespace {

/// Minimal blocking HTTP client: one request, reads to EOF (the server
/// closes after each response), returns the raw response text.
std::string HttpGet(int port, const std::string& target,
                    const std::string& method = "GET") {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr = {};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return "";
  }
  const std::string request = method + " " + target +
                              " HTTP/1.1\r\nHost: localhost\r\n"
                              "Connection: close\r\n\r\n";
  size_t sent = 0;
  while (sent < request.size()) {
    ssize_t n = ::send(fd, request.data() + sent, request.size() - sent, 0);
    if (n <= 0) {
      ::close(fd);
      return "";
    }
    sent += static_cast<size_t>(n);
  }
  std::string response;
  char buffer[4096];
  ssize_t n;
  while ((n = ::recv(fd, buffer, sizeof(buffer), 0)) > 0) {
    response.append(buffer, static_cast<size_t>(n));
  }
  ::close(fd);
  return response;
}

std::string StatusLineOf(const std::string& response) {
  return response.substr(0, response.find("\r\n"));
}

std::string BodyOf(const std::string& response) {
  size_t pos = response.find("\r\n\r\n");
  return pos == std::string::npos ? "" : response.substr(pos + 4);
}

TEST(HttpServerTest, ServesHealthzOnEphemeralPort) {
  HttpServer::Options options;
  auto server = HttpServer::Start(options);
  ASSERT_TRUE(server.ok()) << server.status().ToString();
  EXPECT_GT((*server)->port(), 0);
  std::string response = HttpGet((*server)->port(), "/healthz");
  EXPECT_EQ(StatusLineOf(response), "HTTP/1.1 200 OK");
  EXPECT_EQ(BodyOf(response), "ok\n");
  EXPECT_GE((*server)->requests_served(), 1);
  (*server)->Stop();
  (*server)->Stop();  // idempotent
}

TEST(HttpServerTest, ServesMetricsInBothFormats) {
  MetricRegistry registry;
  registry.GetCounter("emp_test_requests_total", "Requests seen.")->Add(5);
  HttpServer::Options options;
  options.metrics = &registry;
  auto server = HttpServer::Start(options);
  ASSERT_TRUE(server.ok()) << server.status().ToString();

  std::string prom = BodyOf(HttpGet((*server)->port(), "/metrics"));
  EXPECT_NE(prom.find("# HELP emp_test_requests_total Requests seen."),
            std::string::npos);
  EXPECT_NE(prom.find("# TYPE emp_test_requests_total counter"),
            std::string::npos);
  EXPECT_NE(prom.find("emp_test_requests_total 5"), std::string::npos);

  auto doc = json::Parse(BodyOf(HttpGet((*server)->port(), "/metrics.json")));
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  EXPECT_EQ(doc->Find("counters")->Find("emp_test_requests_total")->AsNumber(),
            5);
  // The server counts its own traffic into the live registry.
  EXPECT_GE(registry.GetCounter("emp_http_requests_total")->value(), 2);
}

TEST(HttpServerTest, ServesProgressFromTheBoard) {
  ProgressBoard board;
  board.SetPhase("construction");
  board.SetBestP(4);
  HttpServer::Options options;
  options.progress = &board;
  auto server = HttpServer::Start(options);
  ASSERT_TRUE(server.ok()) << server.status().ToString();

  auto doc = json::Parse(BodyOf(HttpGet((*server)->port(), "/progress")));
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  EXPECT_EQ(doc->Find("phase")->AsString(), "construction");
  EXPECT_EQ(doc->Find("best_p")->AsNumber(), 4);

  // The board is live: a later poll reflects later publishes.
  board.SetPhase("tabu");
  board.SetBestP(9);
  doc = json::Parse(BodyOf(HttpGet((*server)->port(), "/progress")));
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->Find("phase")->AsString(), "tabu");
  EXPECT_EQ(doc->Find("best_p")->AsNumber(), 9);
}

TEST(HttpServerTest, NullSinksServeDefaults) {
  HttpServer::Options options;  // no registry, no board
  auto server = HttpServer::Start(options);
  ASSERT_TRUE(server.ok()) << server.status().ToString();
  EXPECT_EQ(BodyOf(HttpGet((*server)->port(), "/metrics")), "");
  auto doc = json::Parse(BodyOf(HttpGet((*server)->port(), "/progress")));
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  EXPECT_EQ(doc->Find("phase")->AsString(), "idle");
}

TEST(HttpServerTest, UnknownRouteIs404AndNonGetIs405) {
  HttpServer::Options options;
  auto server = HttpServer::Start(options);
  ASSERT_TRUE(server.ok()) << server.status().ToString();

  // Errors wear the JSON envelope, not ad-hoc plain text.
  const std::string not_found = HttpGet((*server)->port(), "/nope");
  EXPECT_EQ(StatusLineOf(not_found), "HTTP/1.1 404 Not Found");
  auto doc = json::Parse(BodyOf(not_found));
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  EXPECT_EQ(doc->Find("error")->Find("code")->AsString(), "not_found");
  EXPECT_NE(doc->Find("error")->Find("message")->AsString().find("/nope"),
            std::string::npos);

  // A wrong method on a known route is 405 with an Allow header — not a
  // 404, and not a blanket refusal of all non-GET traffic.
  const std::string wrong_method =
      HttpGet((*server)->port(), "/healthz", "POST");
  EXPECT_EQ(StatusLineOf(wrong_method), "HTTP/1.1 405 Method Not Allowed");
  EXPECT_NE(wrong_method.find("Allow: GET"), std::string::npos);
  doc = json::Parse(BodyOf(wrong_method));
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  EXPECT_EQ(doc->Find("error")->Find("code")->AsString(),
            "method_not_allowed");
}

TEST(HttpServerTest, HandlerHookClaimsRoutesAndFallsThrough) {
  HttpServer::Options options;
  options.handler = [](const HttpRequest& request)
      -> std::optional<HttpResponse> {
    if (request.target == "/echo") {
      return HttpResponse{200, "text/plain",
                          request.method + ":" + request.body, {}};
    }
    return std::nullopt;  // everything else falls through to built-ins
  };
  auto server = HttpServer::Start(options);
  ASSERT_TRUE(server.ok()) << server.status().ToString();
  const int port = (*server)->port();

  // A POST with a body reaches the handler intact.
  const std::string body = "hello plane";
  std::string request =
      "POST /echo HTTP/1.1\r\nHost: localhost\r\nConnection: close\r\n"
      "Content-Length: " + std::to_string(body.size()) + "\r\n\r\n" + body;
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr = {};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  // Split the send mid-headers and mid-body: the reader must reassemble.
  const size_t cut = request.size() / 2;
  ASSERT_EQ(::send(fd, request.data(), cut, 0), static_cast<ssize_t>(cut));
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  ASSERT_EQ(::send(fd, request.data() + cut, request.size() - cut, 0),
            static_cast<ssize_t>(request.size() - cut));
  std::string response;
  char buffer[4096];
  ssize_t n;
  while ((n = ::recv(fd, buffer, sizeof(buffer), 0)) > 0) {
    response.append(buffer, static_cast<size_t>(n));
  }
  ::close(fd);
  EXPECT_EQ(StatusLineOf(response), "HTTP/1.1 200 OK");
  EXPECT_EQ(BodyOf(response), "POST:hello plane");

  // Unclaimed targets still serve the built-ins.
  EXPECT_EQ(BodyOf(HttpGet(port, "/healthz")), "ok\n");
}

/// Sends `pieces` in order (small pause between them), optionally
/// half-closing the write side afterwards, and returns the raw response.
std::string RawExchange(int port, const std::vector<std::string>& pieces,
                        bool half_close = false) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr = {};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return "";
  }
  for (size_t i = 0; i < pieces.size(); ++i) {
    if (i > 0) std::this_thread::sleep_for(std::chrono::milliseconds(10));
    size_t sent = 0;
    while (sent < pieces[i].size()) {
      ssize_t n = ::send(fd, pieces[i].data() + sent,
                         pieces[i].size() - sent, 0);
      if (n <= 0) {
        ::close(fd);
        return "";
      }
      sent += static_cast<size_t>(n);
    }
  }
  if (half_close) ::shutdown(fd, SHUT_WR);
  std::string response;
  char buffer[4096];
  ssize_t n;
  while ((n = ::recv(fd, buffer, sizeof(buffer), 0)) > 0) {
    response.append(buffer, static_cast<size_t>(n));
  }
  ::close(fd);
  return response;
}

HttpServer::Options EchoOptions() {
  HttpServer::Options options;
  options.handler = [](const HttpRequest& request)
      -> std::optional<HttpResponse> {
    if (request.target == "/echo") {
      return HttpResponse{200, "text/plain",
                          request.method + ":" + request.body, {}};
    }
    return std::nullopt;
  };
  return options;
}

TEST(HttpServerTest, ContentLengthZeroYieldsEmptyBody) {
  auto server = HttpServer::Start(EchoOptions());
  ASSERT_TRUE(server.ok()) << server.status().ToString();
  const std::string response = RawExchange(
      (*server)->port(),
      {"POST /echo HTTP/1.1\r\nHost: localhost\r\nConnection: close\r\n"
       "Content-Length: 0\r\n\r\n"});
  EXPECT_EQ(StatusLineOf(response), "HTTP/1.1 200 OK");
  EXPECT_EQ(BodyOf(response), "POST:");
}

TEST(HttpServerTest, BodySplitExactlyAtHeaderBoundary) {
  auto server = HttpServer::Start(EchoOptions());
  ASSERT_TRUE(server.ok()) << server.status().ToString();
  // First segment ends precisely at the \r\n\r\n head terminator, so the
  // body reader starts with zero buffered body bytes and must recv the
  // whole payload in phase 2.
  const std::string body = "split at the seam";
  const std::string response = RawExchange(
      (*server)->port(),
      {"POST /echo HTTP/1.1\r\nHost: localhost\r\nConnection: close\r\n"
       "Content-Length: " + std::to_string(body.size()) + "\r\n\r\n",
       body});
  EXPECT_EQ(StatusLineOf(response), "HTTP/1.1 200 OK");
  EXPECT_EQ(BodyOf(response), "POST:" + body);
}

TEST(HttpServerTest, OversizedContentLengthValuesAreRejected) {
  auto server = HttpServer::Start(EchoOptions());
  ASSERT_TRUE(server.ok()) << server.status().ToString();
  const int port = (*server)->port();
  // Larger than the 64 KiB cap but parseable: 413.
  std::string response = RawExchange(
      port,
      {"POST /echo HTTP/1.1\r\nHost: localhost\r\nConnection: close\r\n"
       "Content-Length: 100000\r\n\r\n"});
  EXPECT_EQ(StatusLineOf(response), "HTTP/1.1 413 Content Too Large");
  EXPECT_NE(BodyOf(response).find("payload_too_large"), std::string::npos);
  // Overflows unsigned long long entirely: strtoull saturates to
  // ULLONG_MAX, which the size cap must still catch — not wrap to a small
  // accepted length.
  response = RawExchange(
      port,
      {"POST /echo HTTP/1.1\r\nHost: localhost\r\nConnection: close\r\n"
       "Content-Length: 99999999999999999999999999\r\n\r\n"});
  EXPECT_EQ(StatusLineOf(response), "HTTP/1.1 413 Content Too Large");
  // Not a number at all: 400.
  response = RawExchange(
      port,
      {"POST /echo HTTP/1.1\r\nHost: localhost\r\nConnection: close\r\n"
       "Content-Length: 12x3\r\n\r\n"});
  EXPECT_EQ(StatusLineOf(response), "HTTP/1.1 400 Bad Request");
  EXPECT_NE(BodyOf(response).find("unparseable Content-Length"),
            std::string::npos);
}

TEST(HttpServerTest, PeerCloseMidBodyIsTruncationError) {
  auto server = HttpServer::Start(EchoOptions());
  ASSERT_TRUE(server.ok()) << server.status().ToString();
  // Declare 100 bytes, deliver 10, then half-close: the reader must report
  // exactly what it got instead of hanging or serving a partial body.
  const std::string response = RawExchange(
      (*server)->port(),
      {"POST /echo HTTP/1.1\r\nHost: localhost\r\nConnection: close\r\n"
       "Content-Length: 100\r\n\r\n",
       "only10byte"},
      /*half_close=*/true);
  EXPECT_EQ(StatusLineOf(response), "HTTP/1.1 400 Bad Request");
  EXPECT_NE(BodyOf(response).find(
                "request body truncated: got 10 of 100 bytes"),
            std::string::npos);
}

TEST(HttpServerTest, ServesProfilerDumpAtProfile) {
  HttpServer::Options options;
  auto server = HttpServer::Start(options);
  ASSERT_TRUE(server.ok()) << server.status().ToString();
  const std::string response = HttpGet((*server)->port(), "/profile");
  EXPECT_EQ(StatusLineOf(response), "HTTP/1.1 200 OK");
  EXPECT_NE(response.find("Content-Type: application/json"),
            std::string::npos);
  auto doc = json::Parse(BodyOf(response));
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  // The profiler is off by default; the dump still has the full shape.
  EXPECT_EQ(doc->Find("enabled")->AsBool(), false);
  ASSERT_NE(doc->Find("phases"), nullptr);
  // Wrong method gets the usual 405 treatment.
  const std::string wrong = HttpGet((*server)->port(), "/profile", "POST");
  EXPECT_EQ(StatusLineOf(wrong), "HTTP/1.1 405 Method Not Allowed");
}

// Every error envelope must declare itself JSON — clients dispatch on
// Content-Type, and a 404/405/413/400 that arrives as text/plain would
// silently break them.
TEST(HttpServerTest, ErrorEnvelopesCarryJsonContentType) {
  auto server = HttpServer::Start(EchoOptions());
  ASSERT_TRUE(server.ok()) << server.status().ToString();
  const int port = (*server)->port();

  const std::string not_found = HttpGet(port, "/nope");
  EXPECT_EQ(StatusLineOf(not_found), "HTTP/1.1 404 Not Found");
  EXPECT_NE(not_found.find("Content-Type: application/json"),
            std::string::npos);

  const std::string wrong_method = HttpGet(port, "/healthz", "POST");
  EXPECT_EQ(StatusLineOf(wrong_method), "HTTP/1.1 405 Method Not Allowed");
  EXPECT_NE(wrong_method.find("Content-Type: application/json"),
            std::string::npos);

  const std::string too_large = RawExchange(
      port,
      {"POST /echo HTTP/1.1\r\nHost: localhost\r\nConnection: close\r\n"
       "Content-Length: 100000\r\n\r\n"});
  EXPECT_EQ(StatusLineOf(too_large), "HTTP/1.1 413 Content Too Large");
  EXPECT_NE(too_large.find("Content-Type: application/json"),
            std::string::npos);

  const std::string bad_request = RawExchange(
      port,
      {"POST /echo HTTP/1.1\r\nHost: localhost\r\nConnection: close\r\n"
       "Content-Length: 12x3\r\n\r\n"});
  EXPECT_EQ(StatusLineOf(bad_request), "HTTP/1.1 400 Bad Request");
  EXPECT_NE(bad_request.find("Content-Type: application/json"),
            std::string::npos);

  // Each of those bodies is parseable JSON wearing the envelope.
  for (const std::string* response :
       {&not_found, &wrong_method, &too_large, &bad_request}) {
    auto doc = json::Parse(BodyOf(*response));
    ASSERT_TRUE(doc.ok()) << doc.status().ToString();
    EXPECT_NE(doc->Find("error"), nullptr);
  }
}

TEST(HttpServerTest, QueryStringsAreIgnoredInRouting) {
  HttpServer::Options options;
  auto server = HttpServer::Start(options);
  ASSERT_TRUE(server.ok()) << server.status().ToString();
  EXPECT_EQ(BodyOf(HttpGet((*server)->port(), "/healthz?probe=1")), "ok\n");
}

TEST(HttpServerTest, PortCollisionIsAnError) {
  auto first = HttpServer::Start({});
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  HttpServer::Options options;
  options.port = (*first)->port();
  auto second = HttpServer::Start(options);
  EXPECT_FALSE(second.ok());
  EXPECT_EQ(second.status().code(), StatusCode::kIOError);
}

/// The guarantee the whole plane rests on: serving does not perturb the
/// solve. A fixed-seed solve must be bit-identical with the server on
/// (serve_port = 0) and off (serve_port = -1).
TEST(HttpServerTest, ServingDoesNotPerturbTheSolve) {
  std::vector<double> pop(36);
  for (size_t i = 0; i < pop.size(); ++i) {
    pop[i] = 5.0 + static_cast<double>((i * 37) % 23);
  }
  AreaSet areas =
      test::MakeAreaSet(test::GridGraph(6, 6), {{"pop", pop}});
  std::vector<Constraint> cs = {Constraint::Sum("pop", 60, kNoUpperBound)};

  SolverOptions with_server;
  with_server.serve_port = 0;  // ephemeral plane, self-contained
  auto observed = FactSolver(&areas, cs, with_server).Solve();
  ASSERT_TRUE(observed.ok()) << observed.status().ToString();

  SolverOptions without_server;  // serve_port = -1: no plane
  auto plain = FactSolver(&areas, cs, without_server).Solve();
  ASSERT_TRUE(plain.ok()) << plain.status().ToString();

  EXPECT_EQ(observed->p(), plain->p());
  EXPECT_EQ(observed->region_of, plain->region_of);
  EXPECT_EQ(observed->heterogeneity, plain->heterogeneity);
}

// Full-plane race: board writers + metric writers + HTTP readers, all
// concurrent. Run under TSan via tools/run_sanitized_tests.sh: the board
// must stay version-stable and the related-field invariant must hold in
// every served snapshot.
TEST(HttpServerTest, ConcurrentPublishersAndReadersStayConsistent) {
  MetricRegistry registry;
  ProgressBoard board;
  HttpServer::Options options;
  options.metrics = &registry;
  options.progress = &board;
  auto server = HttpServer::Start(options);
  ASSERT_TRUE(server.ok()) << server.status().ToString();
  const int port = (*server)->port();

  std::atomic<bool> stop{false};
  std::vector<std::thread> threads;

  // 2 board publishers, each keeping (checkpoints, evaluations = 3 *
  // checkpoints) related inside one bracket.
  for (int w = 0; w < 2; ++w) {
    threads.emplace_back([&board, &stop] {
      for (int64_t k = 1; !stop.load(std::memory_order_relaxed); ++k) {
        board.OnCheckpoint("tabu", k, 3 * k);
        board.SetBestP(static_cast<int32_t>(k % 64));
      }
    });
  }
  // 2 metric publishers.
  for (int w = 0; w < 2; ++w) {
    threads.emplace_back([&registry, &stop] {
      Counter* counter = registry.GetCounter("emp_hammer_total");
      Gauge* gauge = registry.GetGauge("emp_hammer_gauge");
      while (!stop.load(std::memory_order_relaxed)) {
        counter->Add(1);
        gauge->Set(1.0);
      }
    });
  }
  // 2 HTTP /progress pollers asserting the bracket invariant end-to-end.
  std::atomic<int64_t> polls{0};
  for (int w = 0; w < 2; ++w) {
    threads.emplace_back([&stop, &polls, port] {
      while (!stop.load(std::memory_order_relaxed)) {
        auto doc = json::Parse(BodyOf(HttpGet(port, "/progress")));
        ASSERT_TRUE(doc.ok()) << doc.status().ToString();
        ASSERT_EQ(doc->Find("evaluations")->AsNumber(),
                  3 * doc->Find("checkpoints")->AsNumber());
        polls.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  // 2 direct board readers (no HTTP hop) watching version stability.
  for (int w = 0; w < 2; ++w) {
    threads.emplace_back([&board, &stop] {
      uint64_t last_version = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        ProgressSnapshot s = board.Read();
        ASSERT_EQ(s.version % 2, 0u);
        ASSERT_GE(s.version, last_version);
        last_version = s.version;
        ASSERT_EQ(s.evaluations, 3 * s.checkpoints);
      }
    });
  }

  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  stop.store(true, std::memory_order_relaxed);
  for (auto& t : threads) t.join();
  EXPECT_GT(polls.load(), 0);
  // A last poll through the full stack still parses after the hammer.
  auto doc = json::Parse(BodyOf(HttpGet(port, "/metrics.json")));
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  EXPECT_GT(doc->Find("counters")->Find("emp_hammer_total")->AsNumber(), 0);
}

}  // namespace
}  // namespace obs
}  // namespace emp
