#include "common/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

namespace emp {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.UniformInt(0, 1000000), b.UniformInt(0, 1000000));
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 50; ++i) {
    if (a.UniformInt(0, 1 << 30) == b.UniformInt(0, 1 << 30)) ++same;
  }
  EXPECT_LT(same, 5);
}

TEST(RngTest, UniformIntRespectsBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.UniformInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
  }
}

TEST(RngTest, UniformRealRespectsBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    double v = rng.Uniform(2.0, 5.0);
    EXPECT_GE(v, 2.0);
    EXPECT_LT(v, 5.0);
  }
}

TEST(RngTest, NormalHasApproximatelyRightMoments) {
  Rng rng(99);
  double sum = 0;
  double sq = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    double v = rng.Normal(10.0, 2.0);
    sum += v;
    sq += v * v;
  }
  double mean = sum / n;
  double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.1);
  EXPECT_NEAR(var, 4.0, 0.3);
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(5);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> orig = v;
  rng.Shuffle(&v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(RngTest, ShuffleHandlesTinyVectors) {
  Rng rng(5);
  std::vector<int> empty;
  std::vector<int> one = {42};
  rng.Shuffle(&empty);
  rng.Shuffle(&one);
  EXPECT_TRUE(empty.empty());
  EXPECT_EQ(one[0], 42);
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(11);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(StableHashTest, DeterministicAndDistinct) {
  EXPECT_EQ(StableHash64("2k"), StableHash64("2k"));
  std::set<uint64_t> hashes;
  for (const char* s : {"1k", "2k", "4k", "8k", "10k", "50k"}) {
    hashes.insert(StableHash64(s));
  }
  EXPECT_EQ(hashes.size(), 6u);
}

}  // namespace
}  // namespace emp
