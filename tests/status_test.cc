#include "common/status.h"

#include <gtest/gtest.h>

namespace emp {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "ok");
}

TEST(StatusTest, FactoryConstructorsCarryCodeAndMessage) {
  EXPECT_EQ(Status::InvalidArgument("bad").code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::FailedPrecondition("fp").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::NotFound("nf").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::Infeasible("inf").code(), StatusCode::kInfeasible);
  EXPECT_EQ(Status::IOError("io").code(), StatusCode::kIOError);
  EXPECT_EQ(Status::Internal("int").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::NotFound("the thing").message(), "the thing");
}

TEST(StatusTest, ToStringIncludesCodeNameAndMessage) {
  Status s = Status::Infeasible("no seeds");
  EXPECT_EQ(s.ToString(), "infeasible: no seeds");
}

TEST(StatusTest, ToStringOmitsColonForEmptyMessage) {
  Status s(StatusCode::kIOError, "");
  EXPECT_EQ(s.ToString(), "io-error");
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("x"), Status::NotFound("x"));
  EXPECT_FALSE(Status::NotFound("x") == Status::NotFound("y"));
  EXPECT_FALSE(Status::NotFound("x") == Status::Internal("x"));
}

TEST(StatusTest, CodeNamesAreStable) {
  EXPECT_EQ(StatusCodeName(StatusCode::kOk), "ok");
  EXPECT_EQ(StatusCodeName(StatusCode::kInvalidArgument), "invalid-argument");
  EXPECT_EQ(StatusCodeName(StatusCode::kInfeasible), "infeasible");
}

Status FailsThenPropagates(bool fail) {
  EMP_RETURN_IF_ERROR(fail ? Status::IOError("inner") : Status::OK());
  return Status::OK();
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  EXPECT_TRUE(FailsThenPropagates(false).ok());
  Status s = FailsThenPropagates(true);
  EXPECT_EQ(s.code(), StatusCode::kIOError);
  EXPECT_EQ(s.message(), "inner");
}

}  // namespace
}  // namespace emp
