#include "geometry/voronoi.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "common/rng.h"

namespace emp {
namespace {

Box Frame(double w, double h) {
  Box b;
  b.Extend(Point{0, 0});
  b.Extend(Point{w, h});
  return b;
}

TEST(VoronoiTest, SingleSiteOwnsWholeFrame) {
  auto d = ComputeVoronoi({{1, 1}}, Frame(2, 2));
  ASSERT_TRUE(d.ok());
  ASSERT_EQ(d->cells.size(), 1u);
  EXPECT_NEAR(d->cells[0].Area(), 4.0, 1e-9);
  EXPECT_TRUE(d->neighbors[0].empty());
}

TEST(VoronoiTest, TwoSitesSplitFrameAtBisector) {
  auto d = ComputeVoronoi({{1, 1}, {3, 1}}, Frame(4, 2));
  ASSERT_TRUE(d.ok());
  EXPECT_NEAR(d->cells[0].Area(), 4.0, 1e-9);
  EXPECT_NEAR(d->cells[1].Area(), 4.0, 1e-9);
  ASSERT_EQ(d->neighbors[0].size(), 1u);
  EXPECT_EQ(d->neighbors[0][0], 1);
  EXPECT_EQ(d->neighbors[1][0], 0);
}

TEST(VoronoiTest, GridSitesHaveGridAdjacency) {
  // 3x3 regular grid: the center cell neighbors exactly the 4 edge cells.
  std::vector<Point> sites;
  for (int r = 0; r < 3; ++r) {
    for (int c = 0; c < 3; ++c) {
      sites.push_back({c + 0.5, r + 0.5});
    }
  }
  auto d = ComputeVoronoi(sites, Frame(3, 3));
  ASSERT_TRUE(d.ok());
  // Site 4 is the center.
  std::vector<int32_t> expected = {1, 3, 5, 7};
  EXPECT_EQ(d->neighbors[4], expected);
}

TEST(VoronoiTest, CellsTileTheFrame) {
  Rng rng(101);
  std::vector<Point> sites;
  for (int i = 0; i < 200; ++i) {
    sites.push_back({rng.Uniform(0.01, 9.99), rng.Uniform(0.01, 4.99)});
  }
  auto d = ComputeVoronoi(sites, Frame(10, 5));
  ASSERT_TRUE(d.ok());
  double total = 0.0;
  for (const Polygon& cell : d->cells) {
    EXPECT_GT(cell.Area(), 0.0);
    EXPECT_TRUE(cell.IsConvex());
    total += cell.Area();
  }
  EXPECT_NEAR(total, 50.0, 1e-6);
}

TEST(VoronoiTest, EachSiteInsideItsOwnCell) {
  Rng rng(7);
  std::vector<Point> sites;
  for (int i = 0; i < 100; ++i) {
    sites.push_back({rng.Uniform(0.1, 9.9), rng.Uniform(0.1, 9.9)});
  }
  auto d = ComputeVoronoi(sites, Frame(10, 10));
  ASSERT_TRUE(d.ok());
  for (size_t i = 0; i < sites.size(); ++i) {
    EXPECT_TRUE(d->cells[i].Contains(sites[i])) << "site " << i;
  }
}

TEST(VoronoiTest, AdjacencyIsSymmetricAndIrreflexive) {
  Rng rng(55);
  std::vector<Point> sites;
  for (int i = 0; i < 150; ++i) {
    sites.push_back({rng.Uniform(0.1, 11.9), rng.Uniform(0.1, 7.9)});
  }
  auto d = ComputeVoronoi(sites, Frame(12, 8));
  ASSERT_TRUE(d.ok());
  for (size_t i = 0; i < sites.size(); ++i) {
    for (int32_t j : d->neighbors[i]) {
      EXPECT_NE(j, static_cast<int32_t>(i));
      const auto& back = d->neighbors[static_cast<size_t>(j)];
      EXPECT_TRUE(std::find(back.begin(), back.end(),
                            static_cast<int32_t>(i)) != back.end());
    }
  }
}

TEST(VoronoiTest, AverageDegreeIsTractLike) {
  // Voronoi diagrams of generic points have average degree near 6 in the
  // interior; with boundary effects expect roughly 5-6.5.
  Rng rng(3);
  std::vector<Point> sites;
  for (int i = 0; i < 400; ++i) {
    sites.push_back({rng.Uniform(0.1, 19.9), rng.Uniform(0.1, 19.9)});
  }
  auto d = ComputeVoronoi(sites, Frame(20, 20));
  ASSERT_TRUE(d.ok());
  double total_degree = 0;
  for (const auto& nb : d->neighbors) total_degree += nb.size();
  double avg = total_degree / sites.size();
  EXPECT_GT(avg, 4.5);
  EXPECT_LT(avg, 7.0);
}

TEST(VoronoiTest, RejectsEmptySites) {
  EXPECT_FALSE(ComputeVoronoi({}, Frame(1, 1)).ok());
}

TEST(VoronoiTest, RejectsSiteOutsideFrame) {
  EXPECT_FALSE(ComputeVoronoi({{5, 5}}, Frame(1, 1)).ok());
}

TEST(VoronoiTest, RejectsEmptyFrame) {
  EXPECT_FALSE(ComputeVoronoi({{0, 0}}, Box()).ok());
}

TEST(VoronoiTest, CellOwnershipMatchesNearestSite) {
  // Exactness property: any point inside cell i must have site i as its
  // nearest site (up to boundary ties) — this catches under-clipped cells
  // that the security-radius certification is supposed to prevent.
  Rng rng(2023);
  std::vector<Point> sites;
  for (int i = 0; i < 250; ++i) {
    sites.push_back({rng.Uniform(0.1, 14.9), rng.Uniform(0.1, 9.9)});
  }
  auto d = ComputeVoronoi(sites, Frame(15, 10));
  ASSERT_TRUE(d.ok());
  for (int trial = 0; trial < 500; ++trial) {
    Point q{rng.Uniform(0, 15), rng.Uniform(0, 10)};
    int32_t owner = -1;
    for (size_t i = 0; i < sites.size(); ++i) {
      if (d->cells[i].Contains(q)) {
        owner = static_cast<int32_t>(i);
        break;
      }
    }
    if (owner == -1) continue;  // On a boundary; skip.
    double owner_dist = Distance(q, sites[static_cast<size_t>(owner)]);
    for (size_t i = 0; i < sites.size(); ++i) {
      EXPECT_GE(Distance(q, sites[i]), owner_dist - 1e-9)
          << "site " << i << " closer than owner " << owner;
    }
  }
}

TEST(VoronoiTest, NeighborListsSorted) {
  Rng rng(9);
  std::vector<Point> sites;
  for (int i = 0; i < 60; ++i) {
    sites.push_back({rng.Uniform(0.1, 5.9), rng.Uniform(0.1, 5.9)});
  }
  auto d = ComputeVoronoi(sites, Frame(6, 6));
  ASSERT_TRUE(d.ok());
  for (const auto& nb : d->neighbors) {
    EXPECT_TRUE(std::is_sorted(nb.begin(), nb.end()));
  }
}

}  // namespace
}  // namespace emp
