#include "data/geojson.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "data/synthetic/dataset_catalog.h"

namespace emp {
namespace {

AreaSet TwoSquares() {
  std::vector<Polygon> polys = {
      Polygon({{0, 0}, {1, 0}, {1, 1}, {0, 1}}),
      Polygon({{1, 0}, {2, 0}, {2, 1}, {1, 1}}),
  };
  auto graph = ContiguityGraph::FromEdges(2, {{0, 1}});
  AttributeTable t(2);
  EXPECT_TRUE(t.AddColumn("POP", {100, 200}).ok());
  auto a = AreaSet::Create("two", polys, std::move(graph).value(),
                           std::move(t), "POP");
  return std::move(a).value();
}

TEST(GeoJsonTest, EmitsFeatureCollection) {
  AreaSet areas = TwoSquares();
  auto json = ToGeoJson(areas);
  ASSERT_TRUE(json.ok());
  EXPECT_NE(json->find("\"type\":\"FeatureCollection\""), std::string::npos);
  EXPECT_NE(json->find("\"area_id\":0"), std::string::npos);
  EXPECT_NE(json->find("\"area_id\":1"), std::string::npos);
  EXPECT_NE(json->find("\"POP\":100"), std::string::npos);
}

TEST(GeoJsonTest, IncludesRegionAssignmentWhenGiven) {
  AreaSet areas = TwoSquares();
  auto json = ToGeoJson(areas, {0, -1});
  ASSERT_TRUE(json.ok());
  EXPECT_NE(json->find("\"region_id\":0"), std::string::npos);
  EXPECT_NE(json->find("\"region_id\":-1"), std::string::npos);
}

TEST(GeoJsonTest, ClosesPolygonRings) {
  AreaSet areas = TwoSquares();
  auto json = ToGeoJson(areas);
  ASSERT_TRUE(json.ok());
  // Ring repeats the first vertex: [0,0] appears at start and end.
  EXPECT_NE(json->find("[[[0,0],[1,0],[1,1],[0,1],[0,0]]]"),
            std::string::npos);
}

TEST(GeoJsonTest, RejectsWrongAssignmentSize) {
  AreaSet areas = TwoSquares();
  EXPECT_FALSE(ToGeoJson(areas, {0}).ok());
}

TEST(GeoJsonTest, RejectsGeometrylessAreaSet) {
  AttributeTable t(1);
  ASSERT_TRUE(t.AddColumn("X", {1}).ok());
  auto graph = ContiguityGraph::FromEdges(1, {});
  auto areas = AreaSet::CreateWithoutGeometry("g", std::move(graph).value(),
                                              std::move(t), "X");
  ASSERT_TRUE(areas.ok());
  EXPECT_FALSE(ToGeoJson(*areas).ok());
}

TEST(AssignmentCsvTest, FormatsRows) {
  std::string csv = AssignmentToCsv({2, -1, 0});
  EXPECT_EQ(csv, "area_id,region_id\n0,2\n1,-1\n2,0\n");
}

TEST(GeoJsonImportTest, RoundTripsExportIncludingAssignment) {
  AreaSet original = TwoSquares();
  auto exported = ToGeoJson(original, {1, -1});
  ASSERT_TRUE(exported.ok());
  std::vector<int32_t> region_of;
  GeoJsonImportOptions options;
  options.dissimilarity_attribute = "POP";
  auto imported = FromGeoJson(*exported, options, &region_of);
  ASSERT_TRUE(imported.ok()) << imported.status().ToString();
  ASSERT_EQ(imported->num_areas(), 2);
  EXPECT_DOUBLE_EQ(imported->attributes().Value(0, 0), 100);
  EXPECT_DOUBLE_EQ(imported->attributes().Value(0, 1), 200);
  EXPECT_TRUE(imported->graph().HasEdge(0, 1));
  EXPECT_EQ(region_of, (std::vector<int32_t>{1, -1}));
  EXPECT_NEAR(imported->polygon(0).Area(), original.polygon(0).Area(), 1e-6);
}

TEST(GeoJsonImportTest, HandMadeFeatureCollection) {
  const char* text = R"({
    "type": "FeatureCollection",
    "features": [
      {"type": "Feature",
       "properties": {"POP": 10, "note": "ignored"},
       "geometry": {"type": "Polygon",
                    "coordinates": [[[0,0],[1,0],[1,1],[0,1],[0,0]]]}},
      {"type": "Feature",
       "properties": {"POP": 20},
       "geometry": {"type": "Polygon",
                    "coordinates": [[[1,0],[2,0],[2,1],[1,1],[1,0]]]}}
    ]})";
  auto imported = FromGeoJson(text);
  ASSERT_TRUE(imported.ok()) << imported.status().ToString();
  EXPECT_EQ(imported->num_areas(), 2);
  EXPECT_TRUE(imported->attributes().HasColumn("POP"));
  EXPECT_FALSE(imported->attributes().HasColumn("note"));
  EXPECT_TRUE(imported->graph().HasEdge(0, 1));
}

TEST(GeoJsonImportTest, AreaIdsReorderFeatures) {
  const char* text = R"({
    "type": "FeatureCollection",
    "features": [
      {"type": "Feature",
       "properties": {"area_id": 1, "POP": 20},
       "geometry": {"type": "Polygon",
                    "coordinates": [[[1,0],[2,0],[2,1],[1,1],[1,0]]]}},
      {"type": "Feature",
       "properties": {"area_id": 0, "POP": 10},
       "geometry": {"type": "Polygon",
                    "coordinates": [[[0,0],[1,0],[1,1],[0,1],[0,0]]]}}
    ]})";
  auto imported = FromGeoJson(text);
  ASSERT_TRUE(imported.ok());
  EXPECT_DOUBLE_EQ(imported->attributes().Value(0, 0), 10);
  EXPECT_DOUBLE_EQ(imported->attributes().Value(0, 1), 20);
}

TEST(GeoJsonImportTest, RejectsUnsupportedShapes) {
  EXPECT_FALSE(FromGeoJson("{}").ok());
  EXPECT_FALSE(FromGeoJson(R"({"type":"FeatureCollection"})").ok());
  EXPECT_FALSE(
      FromGeoJson(R"({"type":"FeatureCollection","features":[]})").ok());
  // MultiPolygon rejected.
  const char* multi = R"({
    "type": "FeatureCollection",
    "features": [
      {"type": "Feature", "properties": {"POP": 1},
       "geometry": {"type": "MultiPolygon", "coordinates": []}}
    ]})";
  EXPECT_FALSE(FromGeoJson(multi).ok());
  // Holes rejected.
  const char* holes = R"({
    "type": "FeatureCollection",
    "features": [
      {"type": "Feature", "properties": {"POP": 1},
       "geometry": {"type": "Polygon",
         "coordinates": [[[0,0],[9,0],[9,9],[0,9],[0,0]],
                         [[1,1],[2,1],[2,2],[1,2],[1,1]]]}}
    ]})";
  EXPECT_FALSE(FromGeoJson(holes).ok());
}

TEST(GeoJsonImportTest, SyntheticMapRoundTrip) {
  auto areas = synthetic::MakeCatalogDataset("tiny");
  ASSERT_TRUE(areas.ok());
  auto exported = ToGeoJson(*areas);
  ASSERT_TRUE(exported.ok());
  GeoJsonImportOptions options;
  options.dissimilarity_attribute = "HOUSEHOLDS";
  auto imported = FromGeoJson(*exported, options);
  ASSERT_TRUE(imported.ok()) << imported.status().ToString();
  ASSERT_EQ(imported->num_areas(), areas->num_areas());
  // Adjacency recovered geometrically; tolerate rare rounding slivers.
  int64_t mismatches = 0;
  for (int32_t a = 0; a < areas->num_areas(); ++a) {
    if (!std::ranges::equal(imported->graph().NeighborsOf(a),
                            areas->graph().NeighborsOf(a))) {
      ++mismatches;
    }
  }
  EXPECT_LE(mismatches, areas->num_areas() / 20);
}

}  // namespace
}  // namespace emp
