// End-to-end integration tests: the full FaCT pipeline on synthetic census
// maps with the paper's default constraint suite (Table II) and several
// realistic multi-constraint queries.

#include <gtest/gtest.h>

#include <set>

#include "core/fact_solver.h"
#include "data/synthetic/dataset_catalog.h"
#include "graph/connectivity.h"

namespace emp {
namespace {

void ValidateSolution(const AreaSet& areas,
                      const std::vector<Constraint>& constraints,
                      const Solution& sol) {
  auto bc = BoundConstraints::Create(&areas, constraints);
  ASSERT_TRUE(bc.ok());
  ConnectivityChecker connectivity(&areas.graph());
  std::set<int32_t> seen;
  for (const auto& region : sol.regions) {
    ASSERT_FALSE(region.empty());
    EXPECT_TRUE(connectivity.IsConnected(region));
    RegionStats stats(&*bc);
    for (int32_t a : region) {
      stats.Add(a);
      EXPECT_TRUE(seen.insert(a).second);
    }
    EXPECT_TRUE(stats.SatisfiesAll());
  }
  for (int32_t a : sol.unassigned) EXPECT_TRUE(seen.insert(a).second);
  EXPECT_EQ(seen.size(), static_cast<size_t>(areas.num_areas()));
}

class SolverIntegrationTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    auto areas = synthetic::MakeCatalogDataset("small");  // 400 tracts
    ASSERT_TRUE(areas.ok()) << areas.status().ToString();
    areas_ = new AreaSet(std::move(areas).value());
  }
  static void TearDownTestSuite() {
    delete areas_;
    areas_ = nullptr;
  }

  static AreaSet* areas_;
};

AreaSet* SolverIntegrationTest::areas_ = nullptr;

TEST_F(SolverIntegrationTest, PaperDefaultConstraintSuite) {
  // Table II defaults: MIN(POP16UP) <= 3000, AVG(EMPLOYED) in [1500, 3500],
  // SUM(TOTALPOP) >= 20000.
  std::vector<Constraint> cs = {
      Constraint::Min("POP16UP", kNoLowerBound, 3000),
      Constraint::Avg("EMPLOYED", 1500, 3500),
      Constraint::Sum("TOTALPOP", 20000, kNoUpperBound),
  };
  auto sol = SolveEmp(*areas_, cs);
  ASSERT_TRUE(sol.ok()) << sol.status().ToString();
  EXPECT_GE(sol->p(), 5);
  ValidateSolution(*areas_, cs, *sol);
}

TEST_F(SolverIntegrationTest, SingleMinConstraint) {
  std::vector<Constraint> cs = {
      Constraint::Min("POP16UP", kNoLowerBound, 3500)};
  auto sol = SolveEmp(*areas_, cs);
  ASSERT_TRUE(sol.ok());
  ValidateSolution(*areas_, cs, *sol);
  // Single MIN with open lower bound: p equals the seed count (paper: "the
  // single MIN constraint produces the maximum p bounded by seed areas")
  // when every area can attach to some region.
  EXPECT_GT(sol->p(), 100);
}

TEST_F(SolverIntegrationTest, SingleAvgConstraintModerateRange) {
  std::vector<Constraint> cs = {Constraint::Avg("EMPLOYED", 1000, 3000)};
  auto sol = SolveEmp(*areas_, cs);
  ASSERT_TRUE(sol.ok());
  ValidateSolution(*areas_, cs, *sol);
  EXPECT_GT(sol->p(), 10);
}

TEST_F(SolverIntegrationTest, BoundedSumProducesUnassigned) {
  std::vector<Constraint> cs = {Constraint::Sum("TOTALPOP", 15000, 25000)};
  auto sol = SolveEmp(*areas_, cs);
  ASSERT_TRUE(sol.ok());
  ValidateSolution(*areas_, cs, *sol);
  EXPECT_GT(sol->p(), 5);
}

TEST_F(SolverIntegrationTest, AllFiveAggregatesTogether) {
  std::vector<Constraint> cs = {
      Constraint::Min("POP16UP", kNoLowerBound, 4000),
      Constraint::Max("EMPLOYED", 1000, kNoUpperBound),
      Constraint::Avg("EMPLOYED", 1200, 3800),
      Constraint::Sum("TOTALPOP", 15000, kNoUpperBound),
      Constraint::Count(2, 40),
  };
  auto sol = SolveEmp(*areas_, cs);
  ASSERT_TRUE(sol.ok()) << sol.status().ToString();
  EXPECT_GE(sol->p(), 1);
  ValidateSolution(*areas_, cs, *sol);
}

TEST_F(SolverIntegrationTest, ThresholdMonotonicityOnSum) {
  // Higher SUM lower bounds must not increase p (Table IV trend).
  int32_t prev_p = 0x7fffffff;
  for (double l : {5000.0, 20000.0, 60000.0}) {
    auto sol =
        SolveEmp(*areas_, {Constraint::Sum("TOTALPOP", l, kNoUpperBound)});
    ASSERT_TRUE(sol.ok());
    EXPECT_LE(sol->p(), prev_p) << "l=" << l;
    prev_p = sol->p();
  }
}

TEST_F(SolverIntegrationTest, WiderMinUpperBoundGrowsP) {
  // Fig. 5 trend: p increases with u for MIN(-inf, u].
  auto narrow = SolveEmp(
      *areas_, {Constraint::Min("POP16UP", kNoLowerBound, 2000)});
  auto wide = SolveEmp(
      *areas_, {Constraint::Min("POP16UP", kNoLowerBound, 5000)});
  ASSERT_TRUE(narrow.ok());
  ASSERT_TRUE(wide.ok());
  EXPECT_GT(wide->p(), narrow->p());
}

TEST_F(SolverIntegrationTest, TwoAvgConstraintsOnDifferentAttributes) {
  // Multiple centrality constraints simultaneously — beyond the paper's
  // single-AVG discussion but supported by the formulation (§III).
  std::vector<Constraint> cs = {
      Constraint::Avg("EMPLOYED", 1200, 3200),
      Constraint::Avg("POP16UP", 2200, 4500),
  };
  auto sol = SolveEmp(*areas_, cs);
  ASSERT_TRUE(sol.ok()) << sol.status().ToString();
  EXPECT_GE(sol->p(), 1);
  ValidateSolution(*areas_, cs, *sol);
}

TEST_F(SolverIntegrationTest, ArchipelagoMapSolvable) {
  auto isles = synthetic::MakeDefaultDataset("isles", 300, 99, 3);
  ASSERT_TRUE(isles.ok());
  std::vector<Constraint> cs = {
      Constraint::Sum("TOTALPOP", 20000, kNoUpperBound)};
  auto sol = SolveEmp(*isles, cs);
  ASSERT_TRUE(sol.ok());
  EXPECT_GE(sol->p(), 3);
  ValidateSolution(*isles, cs, *sol);
}

TEST_F(SolverIntegrationTest, MoreConstructionIterationsNeverHurtP) {
  std::vector<Constraint> cs = {
      Constraint::Sum("TOTALPOP", 20000, kNoUpperBound)};
  SolverOptions one;
  one.construction_iterations = 1;
  one.run_local_search = false;
  SolverOptions five;
  five.construction_iterations = 5;
  five.run_local_search = false;
  auto p1 = SolveEmp(*areas_, cs, one);
  auto p5 = SolveEmp(*areas_, cs, five);
  ASSERT_TRUE(p1.ok());
  ASSERT_TRUE(p5.ok());
  EXPECT_GE(p5->p(), p1->p());
}

}  // namespace
}  // namespace emp
