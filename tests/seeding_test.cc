#include "core/construction/seeding.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace emp {
namespace {

SeedingResult RunSeeding(const AreaSet& areas, std::vector<Constraint> cs) {
  auto bc = BoundConstraints::Create(&areas, std::move(cs));
  EXPECT_TRUE(bc.ok());
  auto report = CheckFeasibility(*bc);
  EXPECT_TRUE(report.ok());
  return SelectSeeds(*bc, *report);
}

TEST(SeedingTest, PartitionsValidAreasIntoSeedsAndNonSeeds) {
  AreaSet areas = test::PathAreaSet({1, 3, 5, 7, 9});
  SeedingResult s = RunSeeding(areas, {Constraint::Min("s", 2, 6)});
  // s=1 invalid; seeds s in [2,6] -> {3,5} = areas 1,2; non-seeds {7,9}.
  EXPECT_EQ(s.seeds, (std::vector<int32_t>{1, 2}));
  EXPECT_EQ(s.non_seeds, (std::vector<int32_t>{3, 4}));
  EXPECT_TRUE(s.is_seed[1]);
  EXPECT_FALSE(s.is_seed[0]);
}

TEST(SeedingTest, AllValidAreasSeedWithoutExtremaConstraints) {
  AreaSet areas = test::PathAreaSet({1, 3, 5});
  SeedingResult s =
      RunSeeding(areas, {Constraint::Sum("s", 2, kNoUpperBound)});
  EXPECT_EQ(s.seeds.size(), 3u);
  EXPECT_TRUE(s.non_seeds.empty());
}

TEST(SeedingTest, UnionOverMultipleExtremaConstraints) {
  AreaSet areas = test::PathAreaSet({1, 3, 5, 7, 9});
  SeedingResult s = RunSeeding(areas, {
                                          Constraint::Min("s", 1, 3),
                                          Constraint::Max("s", 7, 9),
                                      });
  // MIN seeds: {1,3} (areas 0,1); MAX seeds: {7,9} (areas 3,4).
  EXPECT_EQ(s.seeds, (std::vector<int32_t>{0, 1, 3, 4}));
  EXPECT_EQ(s.non_seeds, (std::vector<int32_t>{2}));
}

TEST(SeedingTest, InvalidAreasAreNeitherSeedsNorNonSeeds) {
  AreaSet areas = test::PathAreaSet({1, 3, 5, 7, 9});
  SeedingResult s = RunSeeding(
      areas, {Constraint::Min("s", 4, 6), Constraint::Sum("s", 0, 8)});
  // Invalid: s<4 (areas 0,1) and s>8 (area 4). Valid: {5,7} = areas 2,3.
  // Seeds among valid: s in [4,6] -> area 2.
  EXPECT_EQ(s.seeds, (std::vector<int32_t>{2}));
  EXPECT_EQ(s.non_seeds, (std::vector<int32_t>{3}));
}

}  // namespace
}  // namespace emp
