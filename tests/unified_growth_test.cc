#include "core/construction/unified_growth.h"

#include <gtest/gtest.h>

#include "core/fact_solver.h"
#include "core/feasibility.h"
#include "data/synthetic/dataset_catalog.h"
#include "graph/connectivity.h"
#include "test_util.h"

namespace emp {
namespace {

struct UnifiedSetup {
  UnifiedSetup(const AreaSet* areas, std::vector<Constraint> cs)
      : bound(std::move(BoundConstraints::Create(areas, std::move(cs)))
                  .value()),
        feasibility(std::move(CheckFeasibility(bound)).value()),
        seeding(SelectSeeds(bound, feasibility)),
        partition(&bound) {
    for (int32_t a : feasibility.invalid_areas) partition.Deactivate(a);
  }

  Status Grow(uint64_t seed = 1) {
    Rng rng(seed);
    return GrowUnified(seeding, {}, &rng, &partition, &stats);
  }

  BoundConstraints bound;
  FeasibilityReport feasibility;
  SeedingResult seeding;
  Partition partition;
  UnifiedGrowthStats stats;
};

TEST(ConstraintViolationTest, ZeroWhenSatisfied) {
  AreaSet areas = test::PathAreaSet({5, 6, 7});
  auto bc = BoundConstraints::Create(
      &areas, {Constraint::Sum("s", 10, 20), Constraint::Count(1, 3)});
  ASSERT_TRUE(bc.ok());
  RegionStats stats(&*bc);
  stats.Add(0);
  stats.Add(1);
  EXPECT_DOUBLE_EQ(ConstraintViolation(*bc, stats), 0.0);
}

TEST(ConstraintViolationTest, NormalizedBreaches) {
  AreaSet areas = test::PathAreaSet({5, 6, 7});
  auto bc = BoundConstraints::Create(&areas,
                                     {Constraint::Sum("s", 10, 20)});
  ASSERT_TRUE(bc.ok());
  RegionStats stats(&*bc);
  stats.Add(0);  // sum 5, breach (10-5)/10 = 0.5
  EXPECT_NEAR(ConstraintViolation(*bc, stats), 0.5, 1e-12);
  stats.Add(1);
  stats.Add(2);  // sum 18, in range
  EXPECT_DOUBLE_EQ(ConstraintViolation(*bc, stats), 0.0);
}

TEST(UnifiedGrowthTest, GrowsFeasibleRegions) {
  AreaSet areas = test::MakeAreaSet(
      test::GridGraph(5, 5),
      {{"pop", {12, 7, 9, 14, 6, 8, 11, 5, 13, 9, 10, 7, 12,
                6, 9, 11, 8, 14, 5, 10, 7, 13, 9, 6, 12}}});
  UnifiedSetup setup(&areas, {Constraint::Sum("pop", 25, kNoUpperBound)});
  ASSERT_TRUE(setup.Grow().ok());
  EXPECT_GT(setup.partition.NumRegions(), 1);
  ConnectivityChecker check(&areas.graph());
  for (int32_t rid : setup.partition.AliveRegionIds()) {
    EXPECT_TRUE(setup.partition.region(rid).stats.SatisfiesAll());
    EXPECT_TRUE(check.IsConnected(setup.partition.region(rid).areas));
  }
}

TEST(UnifiedGrowthTest, HandlesAllConstraintFamilies) {
  auto areas = synthetic::MakeCatalogDataset("tiny");
  ASSERT_TRUE(areas.ok());
  UnifiedSetup setup(&*areas, {
      Constraint::Min("POP16UP", kNoLowerBound, 4000),
      Constraint::Avg("EMPLOYED", 1200, 3500),
      Constraint::Sum("TOTALPOP", 15000, kNoUpperBound),
      Constraint::Count(2, 30),
  });
  ASSERT_TRUE(setup.Grow().ok());
  ConnectivityChecker check(&areas->graph());
  for (int32_t rid : setup.partition.AliveRegionIds()) {
    EXPECT_TRUE(setup.partition.region(rid).stats.SatisfiesAll());
    EXPECT_TRUE(check.IsConnected(setup.partition.region(rid).areas));
  }
}

TEST(UnifiedGrowthTest, AbandonsHopelessSeeds) {
  // Threshold unreachable from the left component.
  auto graph = ContiguityGraph::FromEdges(4, {{0, 1}, {2, 3}});
  AreaSet areas =
      test::MakeAreaSet(std::move(graph).value(), {{"s", {2, 2, 9, 9}}});
  UnifiedSetup setup(&areas, {Constraint::Sum("s", 10, kNoUpperBound)});
  ASSERT_TRUE(setup.Grow().ok());
  EXPECT_EQ(setup.partition.NumRegions(), 1);
  EXPECT_GT(setup.stats.regions_abandoned, 0);
}

TEST(UnifiedGrowthTest, RequiresEmptyPartition) {
  AreaSet areas = test::PathAreaSet({1, 2});
  UnifiedSetup setup(&areas, {});
  setup.partition.CreateRegion();
  setup.partition.Assign(0, 0);
  Rng rng(1);
  EXPECT_EQ(GrowUnified(setup.seeding, {}, &rng, &setup.partition).code(),
            StatusCode::kFailedPrecondition);
}

TEST(UnifiedGrowthTest, SolverStrategyOptionProducesValidSolutions) {
  auto areas = synthetic::MakeCatalogDataset("small");
  ASSERT_TRUE(areas.ok());
  std::vector<Constraint> cs = {
      Constraint::Sum("TOTALPOP", 20000, kNoUpperBound)};
  SolverOptions unified;
  unified.construction_strategy = ConstructionStrategy::kUnifiedGrowth;
  unified.tabu_max_no_improve = 50;
  auto sol = SolveEmp(*areas, cs, unified);
  ASSERT_TRUE(sol.ok()) << sol.status().ToString();
  EXPECT_GT(sol->p(), 0);
  ConnectivityChecker check(&areas->graph());
  auto bc = BoundConstraints::Create(&*areas, cs);
  ASSERT_TRUE(bc.ok());
  for (const auto& region : sol->regions) {
    RegionStats stats(&*bc);
    for (int32_t a : region) stats.Add(a);
    EXPECT_TRUE(stats.SatisfiesAll());
    EXPECT_TRUE(check.IsConnected(region));
  }
}

TEST(UnifiedGrowthTest, FactStrategyCoversMoreAreasOnMultiConstraint) {
  // Measured trade-off (see bench/ablation_strategy): the single-step
  // baseline reaches comparable p but strands noticeably more areas;
  // FaCT's dedicated enclave machinery is what drives coverage
  // (construction objective (c) in §V-B: "minimizes the number of
  // unassigned areas").
  auto areas = synthetic::MakeCatalogDataset("small");
  ASSERT_TRUE(areas.ok());
  std::vector<Constraint> cs = {
      Constraint::Min("POP16UP", kNoLowerBound, 3000),
      Constraint::Avg("EMPLOYED", 1500, 3500),
      Constraint::Sum("TOTALPOP", 20000, kNoUpperBound),
  };
  SolverOptions base;
  base.run_local_search = false;
  SolverOptions unified = base;
  unified.construction_strategy = ConstructionStrategy::kUnifiedGrowth;
  auto fact = SolveEmp(*areas, cs, base);
  auto uni = SolveEmp(*areas, cs, unified);
  ASSERT_TRUE(fact.ok());
  ASSERT_TRUE(uni.ok());
  EXPECT_LE(fact->num_unassigned(), uni->num_unassigned());
  // And p stays in the same ballpark (within 2x either way).
  EXPECT_LT(fact->p(), uni->p() * 2 + 1);
  EXPECT_LT(uni->p(), fact->p() * 2 + 1);
}

}  // namespace
}  // namespace emp
