#include "core/validate.h"

#include <gtest/gtest.h>

#include "core/fact_solver.h"
#include "data/geojson.h"
#include "test_util.h"

namespace emp {
namespace {

TEST(ValidateTest, AcceptsSolverOutput) {
  AreaSet areas = test::MakeAreaSet(
      test::GridGraph(5, 5),
      {{"pop", {12, 7, 9, 14, 6, 8, 11, 5, 13, 9, 10, 7, 12,
                6, 9, 11, 8, 14, 5, 10, 7, 13, 9, 6, 12}}});
  std::vector<Constraint> cs = {Constraint::Sum("pop", 25, kNoUpperBound)};
  auto sol = SolveEmp(areas, cs);
  ASSERT_TRUE(sol.ok());
  auto report = ValidateAssignment(areas, cs, sol->region_of);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->valid) << report->ToString();
  EXPECT_EQ(report->p, sol->p());
}

TEST(ValidateTest, DetectsConstraintViolation) {
  AreaSet areas = test::PathAreaSet({5, 5, 5});
  // Region {0} has sum 5 < 12.
  auto report = ValidateAssignment(
      areas, {Constraint::Sum("s", 12, kNoUpperBound)}, {0, 1, 1});
  ASSERT_TRUE(report.ok());
  EXPECT_FALSE(report->valid);
  ASSERT_FALSE(report->violations.empty());
  EXPECT_NE(report->violations[0].find("SUM"), std::string::npos);
}

TEST(ValidateTest, DetectsDiscontiguousRegion) {
  // Path 0-1-2-3: region {0, 3} is not contiguous.
  AreaSet areas = test::PathAreaSet({5, 5, 5, 5});
  auto report = ValidateAssignment(
      areas, {Constraint::Sum("s", 5, kNoUpperBound)}, {7, -1, -1, 7});
  ASSERT_TRUE(report.ok());
  EXPECT_FALSE(report->valid);
  bool found = false;
  for (const auto& v : report->violations) {
    if (v.find("contiguous") != std::string::npos) found = true;
  }
  EXPECT_TRUE(found);
}

TEST(ValidateTest, NonCompactRegionIdsAllowed) {
  AreaSet areas = test::PathAreaSet({5, 5});
  auto report = ValidateAssignment(
      areas, {Constraint::Sum("s", 5, kNoUpperBound)}, {42, 99});
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->valid);
  EXPECT_EQ(report->p, 2);
}

TEST(ValidateTest, CountsUnassigned) {
  AreaSet areas = test::PathAreaSet({5, 5, 5});
  auto report = ValidateAssignment(
      areas, {Constraint::Sum("s", 5, kNoUpperBound)}, {0, -1, -1});
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->valid);
  EXPECT_EQ(report->unassigned, 2);
}

TEST(ValidateTest, RejectsWrongSize) {
  AreaSet areas = test::PathAreaSet({5, 5, 5});
  auto report = ValidateAssignment(
      areas, {Constraint::Sum("s", 5, kNoUpperBound)}, {0, 0});
  EXPECT_FALSE(report.ok());
}

TEST(ValidateTest, FlagsMalformedIds) {
  AreaSet areas = test::PathAreaSet({5, 5});
  auto report = ValidateAssignment(
      areas, {Constraint::Sum("s", 5, kNoUpperBound)}, {-7, 0});
  ASSERT_TRUE(report.ok());
  EXPECT_FALSE(report->valid);
}

TEST(AssignmentCsvRoundTripTest, ParsesOwnOutput) {
  std::vector<int32_t> region_of = {2, -1, 0, 0, 1};
  std::string csv = AssignmentToCsv(region_of);
  auto parsed = AssignmentFromCsv(csv, 5);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(*parsed, region_of);
}

TEST(AssignmentCsvRoundTripTest, MissingRowsDefaultUnassigned) {
  auto parsed = AssignmentFromCsv("area_id,region_id\n1,4\n", 3);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(*parsed, (std::vector<int32_t>{-1, 4, -1}));
}

TEST(AssignmentCsvRoundTripTest, RejectsBadInput) {
  EXPECT_FALSE(AssignmentFromCsv("foo,bar\n1,2\n", 3).ok());
  EXPECT_FALSE(AssignmentFromCsv("area_id,region_id\n9,0\n", 3).ok());
  EXPECT_FALSE(
      AssignmentFromCsv("area_id,region_id\n1,0\n1,2\n", 3).ok());
}

TEST(AssignmentCsvRoundTripTest, RejectsRegionIdsBeyondInt32) {
  // 2^31 would truncate to a negative int32 through a blind cast; 2^32
  // would truncate to region 0 and validate as a plausible assignment.
  EXPECT_FALSE(
      AssignmentFromCsv("area_id,region_id\n1,2147483648\n", 3).ok());
  EXPECT_FALSE(
      AssignmentFromCsv("area_id,region_id\n1,4294967296\n", 3).ok());
  EXPECT_FALSE(AssignmentFromCsv("area_id,region_id\n1,-2\n", 3).ok());
  // -1 (explicitly unassigned) and INT32_MAX remain legal.
  auto ok = AssignmentFromCsv("area_id,region_id\n1,-1\n2,2147483647\n", 3);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ((*ok)[1], -1);
  EXPECT_EQ((*ok)[2], 2147483647);
}

}  // namespace
}  // namespace emp
