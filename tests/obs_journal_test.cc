#include "obs/journal.h"

#include <cstdio>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/csv.h"
#include "common/json.h"
#include "common/json_writer.h"
#include "common/str_util.h"

namespace emp {
namespace obs {
namespace {

std::vector<json::Value> ParseLines(const std::string& jsonl) {
  std::vector<json::Value> records;
  for (const std::string& line : Split(jsonl, '\n')) {
    if (line.empty()) continue;
    auto doc = json::Parse(line);
    EXPECT_TRUE(doc.ok()) << doc.status().ToString() << " in: " << line;
    if (doc.ok()) records.push_back(*std::move(doc));
  }
  return records;
}

TEST(RunJournalTest, RecordsCarryMonotonicSeqAndType) {
  RunJournal journal;
  journal.Append("run_start");
  journal.Append("phase_begin",
                 [](JsonWriter& w) {
                   w.Key("phase");
                   w.String("construction");
                 });
  journal.Append("run_end", nullptr, /*force=*/true);
  EXPECT_EQ(journal.size(), 3);
  EXPECT_EQ(journal.dropped(), 0);

  std::vector<json::Value> records = ParseLines(journal.ToJsonl());
  ASSERT_EQ(records.size(), 3u);
  for (size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ(records[i].Find("seq")->AsNumber(), static_cast<double>(i));
    EXPECT_GE(records[i].Find("ts_ms")->AsNumber(), 0);
  }
  EXPECT_EQ(records[0].Find("type")->AsString(), "run_start");
  EXPECT_EQ(records[1].Find("phase")->AsString(), "construction");
  EXPECT_EQ(records[2].Find("type")->AsString(), "run_end");
}

TEST(RunJournalTest, BoundDropsAndCountsNonForcedAppends) {
  RunJournal journal(/*max_records=*/2);
  journal.Append("a");
  journal.Append("b");
  journal.Append("c");  // over the bound: dropped
  journal.Append("d");  // dropped
  EXPECT_EQ(journal.size(), 2);
  EXPECT_EQ(journal.dropped(), 2);
  // The retained prefix is the oldest records — a flight recorder keeps
  // the run's beginning, where the configuration lives.
  std::vector<json::Value> records = ParseLines(journal.ToJsonl());
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].Find("type")->AsString(), "a");
  EXPECT_EQ(records[1].Find("type")->AsString(), "b");
}

TEST(RunJournalTest, ForceBypassesTheBound) {
  RunJournal journal(/*max_records=*/1);
  journal.Append("run_start");
  journal.Append("noise");  // dropped
  journal.Append("run_end",
                 [](JsonWriter& w) {
                   w.Key("ok");
                   w.Bool(true);
                 },
                 /*force=*/true);
  EXPECT_EQ(journal.size(), 2);
  EXPECT_EQ(journal.dropped(), 1);
  std::vector<json::Value> records = ParseLines(journal.ToJsonl());
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records.back().Find("type")->AsString(), "run_end");
  EXPECT_TRUE(records.back().Find("ok")->AsBool());
  // Dropped appends do not consume sequence numbers: the retained JSONL
  // is always densely numbered 0..N-1 (the CI validator relies on this);
  // the loss itself is reported via dropped() -> run_end.dropped_records.
  EXPECT_EQ(records.back().Find("seq")->AsNumber(), 1);
}

TEST(RunJournalTest, FlushToWritesTheJsonl) {
  RunJournal journal;
  journal.Append("run_start",
                 [](JsonWriter& w) {
                   w.Key("seed");
                   w.Int(42);
                 });
  const std::string path =
      ::testing::TempDir() + "/obs_journal_test_flush.jsonl";
  ASSERT_TRUE(journal.FlushTo(path).ok());
  auto contents = ReadFile(path);
  ASSERT_TRUE(contents.ok()) << contents.status().ToString();
  EXPECT_EQ(*contents, journal.ToJsonl());
  EXPECT_NE(contents->find("\"seed\": 42"), std::string::npos);
  // Repeated flushes replace, not append.
  journal.Append("run_end", nullptr, /*force=*/true);
  ASSERT_TRUE(journal.FlushTo(path).ok());
  contents = ReadFile(path);
  ASSERT_TRUE(contents.ok());
  EXPECT_EQ(*contents, journal.ToJsonl());
  std::remove(path.c_str());
}

TEST(RunJournalTest, EmptyJournalFlushesEmpty) {
  RunJournal journal;
  EXPECT_EQ(journal.ToJsonl(), "");
  EXPECT_EQ(journal.size(), 0);
}

TEST(DigestHexTest, FixedWidthLowercaseHex) {
  EXPECT_EQ(DigestHex(0), "0000000000000000");
  EXPECT_EQ(DigestHex(0xdeadbeef), "00000000deadbeef");
  EXPECT_EQ(DigestHex(0xcbf29ce484222325ull), "cbf29ce484222325");
  EXPECT_EQ(DigestHex(~0ull), "ffffffffffffffff");
}

}  // namespace
}  // namespace obs
}  // namespace emp
