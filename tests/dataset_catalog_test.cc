#include "data/synthetic/dataset_catalog.h"

#include <gtest/gtest.h>

namespace emp {
namespace synthetic {
namespace {

TEST(DatasetCatalogTest, ContainsThePapersNineDatasets) {
  // Exact paper area counts (§VII-A, Table I).
  const std::pair<const char*, int32_t> expected[] = {
      {"1k", 1012},  {"2k", 2344},   {"4k", 3947},
      {"8k", 8049},  {"10k", 10255}, {"20k", 20570},
      {"30k", 29887}, {"40k", 40214}, {"50k", 49943},
  };
  for (const auto& [name, n] : expected) {
    auto info = FindDataset(name);
    ASSERT_TRUE(info.ok()) << name;
    EXPECT_EQ(info->num_areas, n) << name;
  }
}

TEST(DatasetCatalogTest, UnknownNameIsNotFound) {
  auto info = FindDataset("999k");
  ASSERT_FALSE(info.ok());
  EXPECT_EQ(info.status().code(), StatusCode::kNotFound);
}

TEST(DatasetCatalogTest, MakeTinyDataset) {
  auto areas = MakeCatalogDataset("tiny");
  ASSERT_TRUE(areas.ok());
  EXPECT_EQ(areas->num_areas(), 120);
  EXPECT_EQ(areas->dissimilarity_attribute(), "HOUSEHOLDS");
  EXPECT_TRUE(areas->attributes().HasColumn("POP16UP"));
  EXPECT_TRUE(areas->attributes().HasColumn("EMPLOYED"));
  EXPECT_TRUE(areas->attributes().HasColumn("TOTALPOP"));
}

TEST(DatasetCatalogTest, ScaleShrinksAreaCount) {
  auto areas = MakeCatalogDataset("1k", 0.2);
  ASSERT_TRUE(areas.ok());
  EXPECT_NEAR(areas->num_areas(), 202, 3);
}

TEST(DatasetCatalogTest, ScaleValidation) {
  EXPECT_FALSE(MakeCatalogDataset("1k", 0.0).ok());
  EXPECT_FALSE(MakeCatalogDataset("1k", 1.5).ok());
}

TEST(DatasetCatalogTest, DeterministicAcrossCalls) {
  auto a = MakeCatalogDataset("tiny");
  auto b = MakeCatalogDataset("tiny");
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  for (int32_t i = 0; i < a->num_areas(); ++i) {
    EXPECT_DOUBLE_EQ(a->attributes().Value(2, i), b->attributes().Value(2, i));
  }
}

TEST(DatasetCatalogTest, MakeDefaultDatasetWithComponents) {
  auto areas = MakeDefaultDataset("isles", 200, 77, 2);
  ASSERT_TRUE(areas.ok());
  EXPECT_EQ(areas->num_areas(), 200);
  EXPECT_EQ(areas->name(), "isles");
}

}  // namespace
}  // namespace synthetic
}  // namespace emp
