// Thread-count invariance: the construction worker pool only changes WHO
// runs an iteration, never its RNG stream or the best-of-k selection, so
// the same seed must produce a bit-identical solution for any thread
// count. Timing fields naturally differ between runs, so the JSON
// comparison strips *_seconds lines.

#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/fact_solver.h"
#include "core/report.h"
#include "data/synthetic/dataset_catalog.h"
#include "obs/metrics.h"

namespace emp {
namespace {

std::string StripTimingLines(const std::string& json) {
  std::istringstream in(json);
  std::string out, line;
  while (std::getline(in, line)) {
    if (line.find("_seconds") != std::string::npos) continue;
    out += line;
    out += '\n';
  }
  return out;
}

TEST(ThreadInvarianceTest, SameSeedSameSolutionAcrossThreadCounts) {
  auto areas = synthetic::MakeDefaultDataset("ti", 300, /*seed=*/7);
  ASSERT_TRUE(areas.ok()) << areas.status().ToString();
  std::vector<Constraint> cs = {
      Constraint::Sum("TOTALPOP", 20000, kNoUpperBound)};

  std::string reference_json;
  Solution reference;
  for (int threads : {1, 2, 8}) {
    SolverOptions options;
    options.seed = 1234;
    options.construction_iterations = 8;
    options.construction_threads = threads;
    auto solver = FactSolver::Create(&*areas, cs, options);
    ASSERT_TRUE(solver.ok()) << solver.status().ToString();
    auto sol = solver->Solve();
    ASSERT_TRUE(sol.ok()) << sol.status().ToString();
    auto json = SolutionToJson(*areas, cs, *sol);
    ASSERT_TRUE(json.ok()) << json.status().ToString();
    const std::string stripped = StripTimingLines(*json);
    if (threads == 1) {
      reference_json = stripped;
      reference = *sol;
      continue;
    }
    EXPECT_EQ(stripped, reference_json) << "threads=" << threads;
    EXPECT_EQ(sol->p(), reference.p()) << "threads=" << threads;
    EXPECT_EQ(sol->region_of, reference.region_of) << "threads=" << threads;
    EXPECT_DOUBLE_EQ(sol->heterogeneity, reference.heterogeneity)
        << "threads=" << threads;
  }
}

TEST(ThreadInvarianceTest, MetricsCoverAllThreePhases) {
  auto areas = synthetic::MakeDefaultDataset("ti2", 200, /*seed=*/3);
  ASSERT_TRUE(areas.ok()) << areas.status().ToString();
  std::vector<Constraint> cs = {
      Constraint::Sum("TOTALPOP", 20000, kNoUpperBound)};
  SolverOptions options;
  options.construction_iterations = 4;
  options.construction_threads = 2;

  obs::MetricRegistry registry;
  FactSolver solver(&*areas, cs, options);
  RunContext ctx = MakeRunContext(options);
  ctx.metrics = &registry;
  auto sol = solver.Solve(ctx);
  ASSERT_TRUE(sol.ok()) << sol.status().ToString();

  obs::MetricsSnapshot snap = registry.Snapshot();
  const size_t total = snap.counters.size() + snap.gauges.size() +
                       snap.histograms.size();
  EXPECT_GE(total, 12u) << "expected at least 12 distinct metrics";
  bool feasibility = false, construction = false, tabu = false;
  auto scan = [&](const std::string& name) {
    if (name.rfind("emp_feasibility_", 0) == 0) feasibility = true;
    if (name.rfind("emp_construction_", 0) == 0) construction = true;
    if (name.rfind("emp_tabu_", 0) == 0) tabu = true;
  };
  for (const auto& [name, v] : snap.counters) scan(name);
  for (const auto& [name, v] : snap.gauges) scan(name);
  for (const auto& [name, v] : snap.histograms) scan(name);
  EXPECT_TRUE(feasibility);
  EXPECT_TRUE(construction);
  EXPECT_TRUE(tabu);

  // The pool honors construction_threads: 4 iterations over 2 threads.
  EXPECT_EQ(registry.GetCounter("emp_construction_iterations_total")->value(),
            4);
}

// The same guarantee, one layer up: FactSolver delegates to the solver
// portfolio when portfolio_replicas > 1, and the portfolio's reduction
// (best p, then heterogeneity, then replica index) is a pure function of
// the replica results — so portfolio_threads must not change the
// solution either. The portfolio's own suite is portfolio_test.cc; this
// test pins the delegation path.
TEST(ThreadInvarianceTest, PortfolioDelegationIsThreadCountInvariant) {
  auto areas = synthetic::MakeDefaultDataset("ti4", 250, /*seed=*/5);
  ASSERT_TRUE(areas.ok()) << areas.status().ToString();
  std::vector<Constraint> cs = {
      Constraint::Sum("TOTALPOP", 20000, kNoUpperBound)};

  Solution reference;
  for (int threads : {1, 2, 8}) {
    SolverOptions options;
    options.seed = 4321;
    options.portfolio_replicas = 4;
    options.portfolio_threads = threads;
    auto solver = FactSolver::Create(&*areas, cs, options);
    ASSERT_TRUE(solver.ok()) << solver.status().ToString();
    auto sol = solver->Solve();
    ASSERT_TRUE(sol.ok()) << sol.status().ToString();
    if (threads == 1) {
      reference = *sol;
      continue;
    }
    EXPECT_EQ(sol->p(), reference.p()) << "threads=" << threads;
    EXPECT_EQ(sol->region_of, reference.region_of) << "threads=" << threads;
    EXPECT_DOUBLE_EQ(sol->heterogeneity, reference.heterogeneity)
        << "threads=" << threads;
  }
}

TEST(ThreadInvarianceTest, CreateRejectsBadInput) {
  auto areas = synthetic::MakeDefaultDataset("ti3", 50, /*seed=*/1);
  ASSERT_TRUE(areas.ok());
  std::vector<Constraint> cs = {
      Constraint::Sum("TOTALPOP", 1000, kNoUpperBound)};

  EXPECT_FALSE(FactSolver::Create(nullptr, cs).ok());

  std::vector<Constraint> bad_attr = {
      Constraint::Sum("NO_SUCH_ATTRIBUTE", 1000, kNoUpperBound)};
  EXPECT_FALSE(FactSolver::Create(&*areas, bad_attr).ok());

  SolverOptions bad_options;
  bad_options.construction_iterations = 0;
  EXPECT_FALSE(FactSolver::Create(&*areas, cs, bad_options).ok());

  EXPECT_TRUE(FactSolver::Create(&*areas, cs).ok());
}

}  // namespace
}  // namespace emp
