#include "data/attribute_table.h"

#include <gtest/gtest.h>

namespace emp {
namespace {

TEST(AttributeTableTest, AddAndReadColumns) {
  AttributeTable t(3);
  ASSERT_TRUE(t.AddColumn("pop", {10, 20, 30}).ok());
  ASSERT_TRUE(t.AddColumn("emp", {1, 2, 3}).ok());
  EXPECT_EQ(t.num_rows(), 3);
  EXPECT_EQ(t.num_columns(), 2);
  EXPECT_DOUBLE_EQ(t.Value(0, 1), 20);
  EXPECT_DOUBLE_EQ(t.Value(1, 2), 3);
}

TEST(AttributeTableTest, RejectsDuplicateNames) {
  AttributeTable t(1);
  ASSERT_TRUE(t.AddColumn("x", {1}).ok());
  EXPECT_FALSE(t.AddColumn("x", {2}).ok());
}

TEST(AttributeTableTest, RejectsWrongSize) {
  AttributeTable t(2);
  EXPECT_FALSE(t.AddColumn("x", {1}).ok());
  EXPECT_FALSE(t.AddColumn("x", {1, 2, 3}).ok());
}

TEST(AttributeTableTest, ColumnIndexLookup) {
  AttributeTable t(1);
  ASSERT_TRUE(t.AddColumn("a", {1}).ok());
  ASSERT_TRUE(t.AddColumn("b", {2}).ok());
  EXPECT_EQ(*t.ColumnIndex("b"), 1);
  EXPECT_TRUE(t.HasColumn("a"));
  EXPECT_FALSE(t.HasColumn("c"));
  auto missing = t.ColumnIndex("c");
  EXPECT_EQ(missing.status().code(), StatusCode::kNotFound);
}

TEST(AttributeTableTest, ColumnByName) {
  AttributeTable t(2);
  ASSERT_TRUE(t.AddColumn("v", {5, 7}).ok());
  auto col = t.ColumnByName("v");
  ASSERT_TRUE(col.ok());
  EXPECT_EQ((*col)[1], 7);
}

TEST(AttributeTableTest, StatsComputeMinMaxSumMean) {
  AttributeTable t(4);
  ASSERT_TRUE(t.AddColumn("v", {4, 1, 7, 2}).ok());
  auto s = t.Stats("v");
  ASSERT_TRUE(s.ok());
  EXPECT_DOUBLE_EQ(s->min, 1);
  EXPECT_DOUBLE_EQ(s->max, 7);
  EXPECT_DOUBLE_EQ(s->sum, 14);
  EXPECT_DOUBLE_EQ(s->mean, 3.5);
}

TEST(AttributeTableTest, StatsOnMissingColumnFails) {
  AttributeTable t(1);
  EXPECT_FALSE(t.Stats("missing").ok());
}

TEST(AttributeTableTest, ColumnNamesPreserveOrder) {
  AttributeTable t(1);
  ASSERT_TRUE(t.AddColumn("z", {0}).ok());
  ASSERT_TRUE(t.AddColumn("a", {0}).ok());
  EXPECT_EQ(t.column_names(), (std::vector<std::string>{"z", "a"}));
}

}  // namespace
}  // namespace emp
