#include "core/local_search/tabu.h"

#include <gtest/gtest.h>

#include "core/local_search/heterogeneity.h"
#include "test_util.h"

namespace emp {
namespace {

struct TabuSetup {
  TabuSetup(const AreaSet* areas_in, std::vector<Constraint> cs)
      : areas(areas_in),
        bound(std::move(BoundConstraints::Create(areas_in, std::move(cs)))
                  .value()),
        partition(&bound),
        connectivity(&areas_in->graph()) {}

  const AreaSet* areas;
  BoundConstraints bound;
  Partition partition;
  ConnectivityChecker connectivity;
};

TEST(TabuTest, ImprovesAPoorInitialSplit) {
  // 1D map with values 1 1 1 9 9 9; optimal two-region split groups equal
  // values (H = 0); start from the interleaving split.
  AreaSet areas = test::PathAreaSet({1, 1, 1, 9, 9, 9});
  TabuSetup setup(&areas, {Constraint::Count(1, 6)});
  int32_t r1 = setup.partition.CreateRegion();
  int32_t r2 = setup.partition.CreateRegion();
  for (int32_t a : {0, 1}) setup.partition.Assign(a, r1);
  for (int32_t a : {2, 3, 4, 5}) setup.partition.Assign(a, r2);

  SolverOptions options;
  options.tabu_max_no_improve = 50;
  auto result = TabuSearch(options, &setup.connectivity, &setup.partition);
  ASSERT_TRUE(result.ok());
  EXPECT_LT(result->final_heterogeneity, result->initial_heterogeneity);
  // Best split is {1,1,1} | {9,9,9}: H = 0.
  EXPECT_NEAR(result->final_heterogeneity, 0.0, 1e-9);
  EXPECT_EQ(setup.partition.RegionOf(2), r1);
  EXPECT_NEAR(ComputeHeterogeneity(setup.partition),
              result->final_heterogeneity, 1e-9);
}

TEST(TabuTest, PreservesRegionCountAndConstraints) {
  AreaSet areas = test::MakeAreaSet(
      test::GridGraph(4, 4),
      {{"s", {4, 9, 1, 7, 2, 8, 5, 3, 9, 1, 6, 4, 7, 3, 8, 2}}});
  TabuSetup setup(&areas, {Constraint::Sum("s", 10, kNoUpperBound)});
  // Four quadrant regions.
  int32_t r[4];
  for (int i = 0; i < 4; ++i) r[i] = setup.partition.CreateRegion();
  const int32_t quadrant_of[16] = {0, 0, 1, 1, 0, 0, 1, 1,
                                   2, 2, 3, 3, 2, 2, 3, 3};
  for (int32_t a = 0; a < 16; ++a) {
    setup.partition.Assign(a, r[quadrant_of[a]]);
  }
  const int32_t p_before = setup.partition.NumRegions();

  SolverOptions options;
  options.tabu_max_no_improve = 64;
  auto result = TabuSearch(options, &setup.connectivity, &setup.partition);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(setup.partition.NumRegions(), p_before);
  for (int32_t rid : setup.partition.AliveRegionIds()) {
    EXPECT_TRUE(setup.partition.region(rid).stats.SatisfiesAll());
    EXPECT_TRUE(
        setup.connectivity.IsConnected(setup.partition.region(rid).areas));
  }
  EXPECT_LE(result->final_heterogeneity, result->initial_heterogeneity);
  EXPECT_TRUE(setup.partition.ValidateInvariants().ok());
}

TEST(TabuTest, NoAdmissibleMovesTerminatesImmediately) {
  // Two singleton regions cannot exchange anything (donor would empty).
  AreaSet areas = test::PathAreaSet({1, 9});
  TabuSetup setup(&areas, {Constraint::Count(1, 2)});
  int32_t r1 = setup.partition.CreateRegion();
  int32_t r2 = setup.partition.CreateRegion();
  setup.partition.Assign(0, r1);
  setup.partition.Assign(1, r2);
  auto result = TabuSearch({}, &setup.connectivity, &setup.partition);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->moves_applied, 0);
  EXPECT_DOUBLE_EQ(result->final_heterogeneity,
                   result->initial_heterogeneity);
}

TEST(TabuTest, RespectsConstraintValidityOfMoves) {
  // SUM >= 10 with region sums exactly 10: no area may move anywhere.
  AreaSet areas = test::PathAreaSet({5, 5, 5, 5});
  TabuSetup setup(&areas, {Constraint::Sum("s", 10, kNoUpperBound)});
  int32_t r1 = setup.partition.CreateRegion();
  int32_t r2 = setup.partition.CreateRegion();
  for (int32_t a : {0, 1}) setup.partition.Assign(a, r1);
  for (int32_t a : {2, 3}) setup.partition.Assign(a, r2);
  auto result = TabuSearch({}, &setup.connectivity, &setup.partition);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->moves_applied, 0);
}

TEST(TabuTest, MaxIterationsCapRespected) {
  AreaSet areas = test::MakeAreaSet(
      test::GridGraph(5, 5),
      {{"s", {1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13,
              14, 15, 16, 17, 18, 19, 20, 21, 22, 23, 24, 25}}});
  TabuSetup setup(&areas, {Constraint::Count(1, 25)});
  int32_t r1 = setup.partition.CreateRegion();
  int32_t r2 = setup.partition.CreateRegion();
  for (int32_t a = 0; a < 25; ++a) {
    setup.partition.Assign(a, a % 5 < 2 ? r1 : r2);
  }
  SolverOptions options;
  options.tabu_max_iterations = 3;
  options.tabu_max_no_improve = 1000;
  auto result = TabuSearch(options, &setup.connectivity, &setup.partition);
  ASSERT_TRUE(result.ok());
  EXPECT_LE(result->iterations, 3);
}

TEST(TabuTest, ImprovementRatioComputedAgainstInitial) {
  TabuResult r;
  r.initial_heterogeneity = 200;
  r.final_heterogeneity = 150;
  EXPECT_NEAR(r.ImprovementRatio(), 0.25, 1e-12);
  TabuResult zero;
  zero.initial_heterogeneity = 0;
  zero.final_heterogeneity = 0;
  EXPECT_DOUBLE_EQ(zero.ImprovementRatio(), 0.0);
}

TEST(TabuTest, RestoresBestNotLast) {
  // With worsening moves allowed, the returned partition must equal the
  // best snapshot: its heterogeneity equals final_heterogeneity exactly.
  AreaSet areas = test::MakeAreaSet(
      test::GridGraph(3, 4),
      {{"s", {5, 3, 8, 1, 9, 2, 7, 4, 6, 1, 8, 3}}});
  TabuSetup setup(&areas, {Constraint::Count(1, 12)});
  int32_t r1 = setup.partition.CreateRegion();
  int32_t r2 = setup.partition.CreateRegion();
  for (int32_t a = 0; a < 12; ++a) {
    setup.partition.Assign(a, a < 6 ? r1 : r2);
  }
  SolverOptions options;
  options.tabu_max_no_improve = 30;
  auto result = TabuSearch(options, &setup.connectivity, &setup.partition);
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(ComputeHeterogeneity(setup.partition),
              result->final_heterogeneity, 1e-9);
  EXPECT_LE(result->final_heterogeneity, result->initial_heterogeneity);
}

TEST(TabuTest, NullArgumentsRejected) {
  AreaSet areas = test::PathAreaSet({1, 2});
  TabuSetup setup(&areas, {});
  EXPECT_FALSE(TabuSearch({}, nullptr, &setup.partition).ok());
  EXPECT_FALSE(TabuSearch({}, &setup.connectivity, nullptr).ok());
}

TEST(TabuTest, DefaultNoImproveCapIsTheAreaCount) {
  // tabu_max_no_improve = -1 means "number of areas" (paper's default).
  // On an instance where every applied move worsens H, the search must
  // stop after exactly num_areas non-improving iterations — here 12 —
  // rather than looping forever or reading -1 literally.
  AreaSet areas = test::MakeAreaSet(
      test::GridGraph(3, 4),
      {{"s", {5, 3, 8, 1, 9, 2, 7, 4, 6, 1, 8, 3}}});
  TabuSetup setup(&areas, {Constraint::Count(1, 12)});
  int32_t r1 = setup.partition.CreateRegion();
  int32_t r2 = setup.partition.CreateRegion();
  for (int32_t a = 0; a < 12; ++a) {
    setup.partition.Assign(a, a < 6 ? r1 : r2);
  }
  SolverOptions defaults;  // tabu_max_no_improve = -1
  ASSERT_EQ(defaults.tabu_max_no_improve, -1);
  auto result = TabuSearch(defaults, &setup.connectivity, &setup.partition);
  ASSERT_TRUE(result.ok());
  // The run terminated (no infinite loop) and did at least one iteration;
  // each iteration either improves (resetting the counter) or counts
  // toward the 12-iteration cap, so iterations is finite and bounded by
  // improving_moves-resets plus num_areas.
  EXPECT_GE(result->iterations, 1);
  EXPECT_LE(result->iterations,
            (result->improving_moves + 1) *
                static_cast<int64_t>(areas.num_areas()) +
                result->improving_moves + 1);
}

TEST(TabuTest, FaultInjectionRestoresBestFeasibleState) {
  AreaSet areas = test::MakeAreaSet(
      test::GridGraph(4, 4),
      {{"s", {4, 9, 1, 7, 2, 8, 5, 3, 9, 1, 6, 4, 7, 3, 8, 2}}});
  TabuSetup setup(&areas, {Constraint::Sum("s", 10, kNoUpperBound)});
  int32_t r[4];
  for (int i = 0; i < 4; ++i) r[i] = setup.partition.CreateRegion();
  const int32_t quadrant_of[16] = {0, 0, 1, 1, 0, 0, 1, 1,
                                   2, 2, 3, 3, 2, 2, 3, 3};
  for (int32_t a = 0; a < 16; ++a) {
    setup.partition.Assign(a, r[quadrant_of[a]]);
  }
  const int32_t p_before = setup.partition.NumRegions();

  RunContext ctx;
  ctx.fault_hook = [](const SupervisionCheckpoint& cp)
      -> std::optional<TerminationReason> {
    if (cp.phase == "tabu" && cp.index >= 3) {
      return TerminationReason::kFaultInjected;
    }
    return std::nullopt;
  };
  PhaseSupervisor supervisor(&ctx, "tabu");
  SolverOptions options;
  options.tabu_max_no_improve = 64;
  auto result = TabuSearch(options, &setup.connectivity, &setup.partition,
                           /*objective=*/nullptr, &supervisor);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->termination, TerminationReason::kFaultInjected);
  // The interrupted search hands back its best snapshot: region count
  // unchanged, all constraints and contiguity intact, H no worse than
  // the starting point.
  EXPECT_EQ(setup.partition.NumRegions(), p_before);
  for (int32_t rid : setup.partition.AliveRegionIds()) {
    EXPECT_TRUE(setup.partition.region(rid).stats.SatisfiesAll());
    EXPECT_TRUE(
        setup.connectivity.IsConnected(setup.partition.region(rid).areas));
  }
  EXPECT_LE(result->final_heterogeneity, result->initial_heterogeneity);
  EXPECT_TRUE(setup.partition.ValidateInvariants().ok());
}

TEST(TabuTest, CancellationStopsTheSearch) {
  AreaSet areas = test::PathAreaSet({1, 1, 1, 9, 9, 9});
  TabuSetup setup(&areas, {Constraint::Count(1, 6)});
  int32_t r1 = setup.partition.CreateRegion();
  int32_t r2 = setup.partition.CreateRegion();
  for (int32_t a : {0, 1}) setup.partition.Assign(a, r1);
  for (int32_t a : {2, 3, 4, 5}) setup.partition.Assign(a, r2);

  RunContext ctx;
  ctx.cancel.Cancel();
  PhaseSupervisor supervisor(&ctx, "tabu");
  auto result = TabuSearch({}, &setup.connectivity, &setup.partition,
                           /*objective=*/nullptr, &supervisor);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->termination, TerminationReason::kCancelled);
  EXPECT_EQ(result->iterations, 0);
  // Untouched: the initial assignment survives verbatim.
  EXPECT_DOUBLE_EQ(result->final_heterogeneity,
                   result->initial_heterogeneity);
}

}  // namespace
}  // namespace emp
