#include "obs/progress.h"

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/json.h"

namespace emp {
namespace obs {
namespace {

TEST(ProgressBoardTest, StartsIdle) {
  ProgressBoard board;
  ProgressSnapshot snapshot = board.Read();
  EXPECT_STREQ(snapshot.phase, "idle");
  EXPECT_EQ(snapshot.best_p, -1);
  EXPECT_FALSE(snapshot.has_heterogeneity);
  EXPECT_EQ(snapshot.work_done, -1);
  EXPECT_EQ(snapshot.replicas, 0);
  EXPECT_EQ(snapshot.version % 2, 0u);
}

TEST(ProgressBoardTest, PublishesRoundTrip) {
  ProgressBoard board;
  board.SetBudgets(/*time_budget_ms=*/5000, /*max_evaluations=*/1000000);
  board.SetPhase("construction");
  board.SetBestP(7);
  board.SetHeterogeneity(123.5);
  board.SetWork(3, 10);
  board.OnCheckpoint("construction", /*checkpoints=*/4, /*evaluations=*/256);

  ProgressSnapshot snapshot = board.Read();
  EXPECT_STREQ(snapshot.phase, "construction");
  EXPECT_EQ(snapshot.time_budget_ms, 5000);
  EXPECT_EQ(snapshot.max_evaluations, 1000000);
  EXPECT_EQ(snapshot.best_p, 7);
  ASSERT_TRUE(snapshot.has_heterogeneity);
  EXPECT_EQ(snapshot.heterogeneity, 123.5);
  EXPECT_EQ(snapshot.work_done, 3);
  EXPECT_EQ(snapshot.work_total, 10);
  EXPECT_EQ(snapshot.checkpoints, 4);
  EXPECT_EQ(snapshot.evaluations, 256);
  EXPECT_GE(snapshot.elapsed_ms, 0);
  EXPECT_EQ(snapshot.version % 2, 0u);
  EXPECT_GE(board.publishes(), 6);
}

TEST(ProgressBoardTest, PhaseNamesAreInterned) {
  ProgressBoard board;
  {
    // The argument's storage dies here; the board must not retain it.
    std::string ephemeral = "tabu";
    board.SetPhase(ephemeral);
  }
  EXPECT_STREQ(board.Read().phase, "tabu");
  board.SetPhase("no-such-phase");
  EXPECT_STREQ(board.Read().phase, "other");
}

TEST(ProgressBoardTest, SetPhaseResetsTheWorkMeter) {
  ProgressBoard board;
  board.SetPhase("construction");
  board.SetWork(5, 10);
  board.OnCheckpoint("construction", 3, 100);
  board.SetPhase("tabu");
  ProgressSnapshot snapshot = board.Read();
  EXPECT_EQ(snapshot.work_done, -1);
  EXPECT_EQ(snapshot.work_total, -1);
  EXPECT_EQ(snapshot.checkpoints, 0);
}

TEST(ProgressBoardTest, ReplicaTable) {
  ProgressBoard board;
  board.SetReplicaCount(3);
  board.SetReplicaState(0, ReplicaState::kConstructing);
  board.SetReplicaState(1, ReplicaState::kLocalSearch, /*p=*/9);
  board.SetReplicaState(1, ReplicaState::kDone);  // p = -1 leaves p alone
  ProgressSnapshot snapshot = board.Read();
  ASSERT_EQ(snapshot.replicas, 3);
  EXPECT_EQ(snapshot.replica[0].state, ReplicaState::kConstructing);
  EXPECT_EQ(snapshot.replica[0].p, -1);
  EXPECT_EQ(snapshot.replica[1].state, ReplicaState::kDone);
  EXPECT_EQ(snapshot.replica[1].p, 9);
  EXPECT_EQ(snapshot.replica[2].state, ReplicaState::kPending);
  // Out-of-range replica indices are ignored, not UB.
  board.SetReplicaState(-1, ReplicaState::kDone);
  board.SetReplicaState(ProgressBoard::kMaxReplicas, ReplicaState::kDone);
  // Re-declaring the portfolio resets the slots.
  board.SetReplicaCount(2);
  snapshot = board.Read();
  EXPECT_EQ(snapshot.replica[1].state, ReplicaState::kPending);
  EXPECT_EQ(snapshot.replica[1].p, -1);
}

TEST(ProgressBoardTest, ReplicaStateNames) {
  EXPECT_EQ(ReplicaStateName(ReplicaState::kPending), "pending");
  EXPECT_EQ(ReplicaStateName(ReplicaState::kConstructing), "constructing");
  EXPECT_EQ(ReplicaStateName(ReplicaState::kLocalSearch), "local-search");
  EXPECT_EQ(ReplicaStateName(ReplicaState::kDone), "done");
  EXPECT_EQ(ReplicaStateName(ReplicaState::kCancelled), "cancelled");
  EXPECT_EQ(ReplicaStateName(ReplicaState::kSkipped), "skipped");
}

TEST(ProgressToJsonTest, SerializesTheSnapshot) {
  ProgressBoard board;
  board.SetBudgets(/*time_budget_ms=*/-1, /*max_evaluations=*/-1);
  board.SetPhase("tabu");
  board.SetBestP(11);
  board.SetReplicaCount(2);
  board.SetReplicaState(0, ReplicaState::kDone, /*p=*/11);
  auto doc = json::Parse(ProgressToJson(board.Read()));
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  EXPECT_EQ(doc->Find("phase")->AsString(), "tabu");
  EXPECT_EQ(doc->Find("best_p")->AsNumber(), 11);
  // No budget, no heterogeneity yet: both serialize as null, not 0.
  EXPECT_TRUE(doc->Find("deadline_remaining_ms")->is_null());
  EXPECT_TRUE(doc->Find("heterogeneity")->is_null());
  const auto& replicas = doc->Find("replicas")->AsArray();
  ASSERT_EQ(replicas.size(), 2u);
  EXPECT_EQ(replicas[0].Find("state")->AsString(), "done");
  EXPECT_EQ(replicas[0].Find("p")->AsNumber(), 11);
  EXPECT_EQ(replicas[1].Find("state")->AsString(), "pending");
}

// Seqlock torn-read hammer: writers publish pairs of related fields in
// ONE bracket each; any snapshot that observes the pair out of relation
// is a torn read the version protocol failed to prevent. Run under TSan
// via tools/run_sanitized_tests.sh.
TEST(ProgressBoardTest, SnapshotsAreNeverTorn) {
  ProgressBoard board;
  std::atomic<bool> stop{false};

  // Writer 1: OnCheckpoint publishes (checkpoints = k, evaluations = 3k)
  // in one bracket.
  std::thread checkpoints([&] {
    for (int64_t k = 1; !stop.load(std::memory_order_relaxed); ++k) {
      board.OnCheckpoint("tabu", k, 3 * k);
    }
  });
  // Writer 2: SetWork publishes (done = k, total = k + 7) in one bracket.
  std::thread work([&] {
    for (int64_t k = 1; !stop.load(std::memory_order_relaxed); ++k) {
      board.SetWork(k, k + 7);
    }
  });

  std::vector<std::thread> readers;
  std::atomic<int64_t> stable_reads{0};
  for (int r = 0; r < 4; ++r) {
    readers.emplace_back([&] {
      uint64_t last_version = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        ProgressSnapshot s = board.Read();
        ASSERT_EQ(s.version % 2, 0u);
        ASSERT_GE(s.version, last_version);  // monotone per reader
        last_version = s.version;
        ASSERT_EQ(s.evaluations, 3 * s.checkpoints)
            << "torn OnCheckpoint bracket";
        if (s.work_done != -1) {
          ASSERT_EQ(s.work_total, s.work_done + 7) << "torn SetWork bracket";
        }
        stable_reads.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  stop.store(true, std::memory_order_relaxed);
  checkpoints.join();
  work.join();
  for (auto& t : readers) t.join();
  EXPECT_GT(stable_reads.load(), 0);
}

}  // namespace
}  // namespace obs
}  // namespace emp
