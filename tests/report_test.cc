#include "core/report.h"

#include <gtest/gtest.h>

#include "core/fact_solver.h"
#include "data/synthetic/dataset_catalog.h"
#include "test_util.h"

namespace emp {
namespace {

TEST(ReportTest, ContainsHeadlineFields) {
  AreaSet areas = test::PathAreaSet({5, 6, 7, 8});
  std::vector<Constraint> cs = {Constraint::Sum("s", 10, kNoUpperBound)};
  auto sol = SolveEmp(areas, cs);
  ASSERT_TRUE(sol.ok());
  auto json = SolutionToJson(areas, cs, *sol);
  ASSERT_TRUE(json.ok()) << json.status().ToString();
  EXPECT_NE(json->find("\"p\": " + std::to_string(sol->p())),
            std::string::npos);
  EXPECT_NE(json->find("\"query\""), std::string::npos);
  EXPECT_NE(json->find("SUM(s) in [10, inf]"), std::string::npos);
  EXPECT_NE(json->find("\"regions\""), std::string::npos);
  EXPECT_NE(json->find("\"unassigned_areas\""), std::string::npos);
}

TEST(ReportTest, PerRegionAggregatesReported) {
  AreaSet areas = test::PathAreaSet({5, 6, 7});
  std::vector<Constraint> cs = {Constraint::Sum("s", 5, kNoUpperBound),
                                Constraint::Count(1, 3)};
  auto sol = SolveEmp(areas, cs);
  ASSERT_TRUE(sol.ok());
  auto json = SolutionToJson(areas, cs, *sol);
  ASSERT_TRUE(json.ok());
  EXPECT_NE(json->find("\"SUM(s)\""), std::string::npos);
  EXPECT_NE(json->find("\"COUNT(*)\""), std::string::npos);
}

TEST(ReportTest, JsonParsesWithNaiveChecks) {
  // Not a full JSON parser, but structural sanity: balanced braces and
  // brackets, no trailing commas before closers.
  auto areas = synthetic::MakeCatalogDataset("tiny");
  ASSERT_TRUE(areas.ok());
  std::vector<Constraint> cs = {
      Constraint::Sum("TOTALPOP", 20000, kNoUpperBound)};
  auto sol = SolveEmp(*areas, cs);
  ASSERT_TRUE(sol.ok());
  auto json = SolutionToJson(*areas, cs, *sol);
  ASSERT_TRUE(json.ok());
  int64_t braces = 0;
  int64_t brackets = 0;
  for (char c : *json) {
    if (c == '{') ++braces;
    if (c == '}') --braces;
    if (c == '[') ++brackets;
    if (c == ']') --brackets;
    EXPECT_GE(braces, 0);
    EXPECT_GE(brackets, 0);
  }
  EXPECT_EQ(braces, 0);
  EXPECT_EQ(brackets, 0);
  EXPECT_EQ(json->find(",]"), std::string::npos);
  EXPECT_EQ(json->find(",}"), std::string::npos);
}

TEST(ReportTest, InfiniteBoundsSerializedAsStrings) {
  AreaSet areas = test::PathAreaSet({5, 6});
  std::vector<Constraint> cs = {Constraint::Sum("s", 5, kNoUpperBound)};
  auto sol = SolveEmp(areas, cs);
  ASSERT_TRUE(sol.ok());
  auto json = SolutionToJson(areas, cs, *sol);
  ASSERT_TRUE(json.ok());
  // No bare "inf" tokens outside quotes (invalid JSON).
  EXPECT_EQ(json->find(": inf"), std::string::npos);
}

}  // namespace
}  // namespace emp
