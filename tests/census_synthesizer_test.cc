#include "data/synthetic/census_synthesizer.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <span>
#include <cmath>

#include "graph/components.h"

namespace emp {
namespace synthetic {
namespace {

MapSpec BasicSpec(int32_t n, uint64_t seed = 9) {
  MapSpec spec;
  spec.name = "test";
  spec.num_areas = n;
  spec.seed = seed;
  spec.attributes = DefaultCensusAttributes();
  spec.dissimilarity_attribute = "HOUSEHOLDS";
  return spec;
}

TEST(CensusSynthesizerTest, ProducesRequestedAreaCount) {
  auto areas = SynthesizeMap(BasicSpec(250));
  ASSERT_TRUE(areas.ok());
  EXPECT_EQ(areas->num_areas(), 250);
  EXPECT_TRUE(areas->has_geometry());
  EXPECT_EQ(areas->attributes().num_columns(), 4);
}

TEST(CensusSynthesizerTest, DeterministicForSameSpec) {
  auto a = SynthesizeMap(BasicSpec(120, 5));
  auto b = SynthesizeMap(BasicSpec(120, 5));
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  for (int32_t i = 0; i < 120; ++i) {
    EXPECT_DOUBLE_EQ(a->attributes().Value(0, i), b->attributes().Value(0, i));
    EXPECT_TRUE(std::ranges::equal(a->graph().NeighborsOf(i),
                                   b->graph().NeighborsOf(i)));
  }
}

TEST(CensusSynthesizerTest, DifferentSeedsProduceDifferentAttributes) {
  auto a = SynthesizeMap(BasicSpec(100, 1));
  auto b = SynthesizeMap(BasicSpec(100, 2));
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  int same = 0;
  for (int32_t i = 0; i < 100; ++i) {
    if (a->attributes().Value(0, i) == b->attributes().Value(0, i)) ++same;
  }
  EXPECT_LT(same, 10);
}

TEST(CensusSynthesizerTest, GraphIsConnectedSingleComponent) {
  auto areas = SynthesizeMap(BasicSpec(300));
  ASSERT_TRUE(areas.ok());
  EXPECT_EQ(ConnectedComponents(areas->graph()).count, 1);
}

TEST(CensusSynthesizerTest, MultipleComponentsHonored) {
  MapSpec spec = BasicSpec(300);
  spec.num_components = 3;
  auto areas = SynthesizeMap(spec);
  ASSERT_TRUE(areas.ok());
  EXPECT_EQ(areas->num_areas(), 300);
  EXPECT_EQ(ConnectedComponents(areas->graph()).count, 3);
}

TEST(CensusSynthesizerTest, TractLikeAverageDegree) {
  auto areas = SynthesizeMap(BasicSpec(500));
  ASSERT_TRUE(areas.ok());
  double avg = areas->graph().AverageDegree();
  EXPECT_GT(avg, 4.0);
  EXPECT_LT(avg, 7.0);
}

TEST(CensusSynthesizerTest, MarginalAnchorsMatchPaper) {
  // Calibration anchors derived from the paper's Table III / Fig. 8; see
  // DESIGN.md §3. Tolerances are generous: shapes matter, not decimals.
  auto areas = SynthesizeMap(BasicSpec(2344, 42));
  ASSERT_TRUE(areas.ok());
  const auto& attrs = areas->attributes();

  // POP16UP: ~11.5% below 2000, ~62% below 3500, ~93% below 5000.
  auto frac_below = [&](const std::string& col, double cut) {
    const std::span<const double> v = *attrs.ColumnByName(col);
    double cnt = 0;
    for (double x : v) {
      if (x <= cut) ++cnt;
    }
    return cnt / static_cast<double>(v.size());
  };
  EXPECT_NEAR(frac_below("POP16UP", 2000), 0.14, 0.05);
  EXPECT_NEAR(frac_below("POP16UP", 3500), 0.61, 0.06);
  EXPECT_NEAR(frac_below("POP16UP", 5000), 0.95, 0.04);

  // EMPLOYED: positively skewed, max around 6k, >half below 2k.
  auto emp_stats = attrs.Stats("EMPLOYED");
  ASSERT_TRUE(emp_stats.ok());
  EXPECT_GT(emp_stats->max, 4500);
  EXPECT_LT(emp_stats->max, 9000);
  EXPECT_GT(frac_below("EMPLOYED", 2000), 0.5);
  EXPECT_GT(emp_stats->mean, emp_stats->max / 4.0);  // not absurdly skewed

  // TOTALPOP: mean near 4.2k (LA-county-like density).
  auto pop_stats = attrs.Stats("TOTALPOP");
  ASSERT_TRUE(pop_stats.ok());
  EXPECT_NEAR(pop_stats->mean, 4200, 300);
}

TEST(CensusSynthesizerTest, DerivedHouseholdsTracksTotalpop) {
  auto areas = SynthesizeMap(BasicSpec(800));
  ASSERT_TRUE(areas.ok());
  const auto& attrs = areas->attributes();
  const std::span<const double> pop = *attrs.ColumnByName("TOTALPOP");
  const std::span<const double> hh = *attrs.ColumnByName("HOUSEHOLDS");
  // Correlation should be strongly positive.
  double mp = 0;
  double mh = 0;
  for (size_t i = 0; i < pop.size(); ++i) {
    mp += pop[i];
    mh += hh[i];
  }
  mp /= static_cast<double>(pop.size());
  mh /= static_cast<double>(hh.size());
  double cov = 0;
  double vp = 0;
  double vh = 0;
  for (size_t i = 0; i < pop.size(); ++i) {
    cov += (pop[i] - mp) * (hh[i] - mh);
    vp += (pop[i] - mp) * (pop[i] - mp);
    vh += (hh[i] - mh) * (hh[i] - mh);
  }
  EXPECT_GT(cov / std::sqrt(vp * vh), 0.9);
}

TEST(CensusSynthesizerTest, AttributesAreSpatiallyAutocorrelated) {
  auto areas = SynthesizeMap(BasicSpec(900));
  ASSERT_TRUE(areas.ok());
  const std::span<const double> v =
      *areas->attributes().ColumnByName("EMPLOYED");
  // Mean absolute difference across graph edges should be well below the
  // all-pairs baseline.
  double edge_diff = 0;
  int64_t edges = 0;
  for (int32_t a = 0; a < areas->num_areas(); ++a) {
    for (int32_t b : areas->graph().NeighborsOf(a)) {
      if (b > a) {
        edge_diff += std::fabs(v[static_cast<size_t>(a)] -
                               v[static_cast<size_t>(b)]);
        ++edges;
      }
    }
  }
  edge_diff /= static_cast<double>(edges);
  double global_diff = 0;
  int64_t pairs = 0;
  for (int32_t a = 0; a < areas->num_areas(); a += 7) {
    for (int32_t b = a + 1; b < areas->num_areas(); b += 13) {
      global_diff += std::fabs(v[static_cast<size_t>(a)] -
                               v[static_cast<size_t>(b)]);
      ++pairs;
    }
  }
  global_diff /= static_cast<double>(pairs);
  EXPECT_LT(edge_diff, 0.8 * global_diff);
}

TEST(CensusSynthesizerTest, RejectsBadSpecs) {
  MapSpec spec = BasicSpec(10);
  spec.num_areas = 0;
  EXPECT_FALSE(SynthesizeMap(spec).ok());

  spec = BasicSpec(10);
  spec.num_components = 11;
  EXPECT_FALSE(SynthesizeMap(spec).ok());

  spec = BasicSpec(10);
  spec.jitter = 0.9;
  EXPECT_FALSE(SynthesizeMap(spec).ok());

  spec = BasicSpec(10);
  spec.attributes.clear();
  EXPECT_FALSE(SynthesizeMap(spec).ok());

  spec = BasicSpec(10);
  spec.attributes[3].derive_from = "UNKNOWN";
  EXPECT_FALSE(SynthesizeMap(spec).ok());
}

TEST(CensusSynthesizerTest, ClampsRespected) {
  auto areas = SynthesizeMap(BasicSpec(500));
  ASSERT_TRUE(areas.ok());
  for (const std::string& col :
       {std::string("POP16UP"), std::string("EMPLOYED"),
        std::string("TOTALPOP"), std::string("HOUSEHOLDS")}) {
    auto s = areas->attributes().Stats(col);
    ASSERT_TRUE(s.ok());
    EXPECT_GT(s->min, 0.0) << col;
  }
}

}  // namespace
}  // namespace synthetic
}  // namespace emp
