#include "graph/connectivity.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "common/rng.h"
#include "graph/components.h"

namespace emp {
namespace {

ContiguityGraph Path(int32_t n) {
  std::vector<std::pair<int32_t, int32_t>> edges;
  for (int32_t i = 0; i + 1 < n; ++i) edges.push_back({i, i + 1});
  return std::move(ContiguityGraph::FromEdges(n, edges)).value();
}

ContiguityGraph Cycle(int32_t n) {
  std::vector<std::pair<int32_t, int32_t>> edges;
  for (int32_t i = 0; i < n; ++i) edges.push_back({i, (i + 1) % n});
  return std::move(ContiguityGraph::FromEdges(n, edges)).value();
}

ContiguityGraph Grid(int32_t rows, int32_t cols) {
  std::vector<std::pair<int32_t, int32_t>> edges;
  for (int32_t r = 0; r < rows; ++r) {
    for (int32_t c = 0; c < cols; ++c) {
      int32_t id = r * cols + c;
      if (c + 1 < cols) edges.push_back({id, id + 1});
      if (r + 1 < rows) edges.push_back({id, id + cols});
    }
  }
  return std::move(ContiguityGraph::FromEdges(rows * cols, edges)).value();
}

TEST(ConnectivityTest, SingletonAndEmptyAreConnected) {
  ContiguityGraph g = Path(3);
  ConnectivityChecker check(&g);
  EXPECT_TRUE(check.IsConnected({}));
  EXPECT_TRUE(check.IsConnected({1}));
}

TEST(ConnectivityTest, PathSubsetsConnectivity) {
  ContiguityGraph g = Path(5);
  ConnectivityChecker check(&g);
  EXPECT_TRUE(check.IsConnected({1, 2, 3}));
  EXPECT_FALSE(check.IsConnected({0, 2}));
  EXPECT_FALSE(check.IsConnected({0, 1, 3, 4}));
}

TEST(ConnectivityTest, RemovingMiddleOfPathDisconnects) {
  ContiguityGraph g = Path(5);
  ConnectivityChecker check(&g);
  std::vector<int32_t> all = {0, 1, 2, 3, 4};
  EXPECT_FALSE(check.IsConnectedWithout(all, 2));
  EXPECT_TRUE(check.IsConnectedWithout(all, 0));
  EXPECT_TRUE(check.IsConnectedWithout(all, 4));
}

TEST(ConnectivityTest, CycleToleratesAnyRemoval) {
  ContiguityGraph g = Cycle(6);
  ConnectivityChecker check(&g);
  std::vector<int32_t> all = {0, 1, 2, 3, 4, 5};
  for (int32_t v : all) {
    EXPECT_TRUE(check.IsConnectedWithout(all, v)) << v;
  }
}

TEST(ConnectivityTest, TinySetsAlwaysSurviveRemoval) {
  ContiguityGraph g = Path(4);
  ConnectivityChecker check(&g);
  EXPECT_TRUE(check.IsConnectedWithout({0, 1}, 0));
  EXPECT_TRUE(check.IsConnectedWithout({2}, 2));
}

TEST(ConnectivityTest, CutVertexMatchesIsConnectedWithout) {
  ContiguityGraph g = Path(5);
  ConnectivityChecker check(&g);
  std::vector<int32_t> all = {0, 1, 2, 3, 4};
  EXPECT_TRUE(check.IsCutVertex(all, 1));
  EXPECT_FALSE(check.IsCutVertex(all, 4));
}

TEST(ConnectivityTest, ArticulationPointsOfPath) {
  ContiguityGraph g = Path(5);
  ConnectivityChecker check(&g);
  std::vector<int32_t> cuts = check.ArticulationPoints({0, 1, 2, 3, 4});
  EXPECT_EQ(cuts, (std::vector<int32_t>{1, 2, 3}));
}

TEST(ConnectivityTest, ArticulationPointsOfCycleAreEmpty) {
  ContiguityGraph g = Cycle(8);
  ConnectivityChecker check(&g);
  EXPECT_TRUE(
      check.ArticulationPoints({0, 1, 2, 3, 4, 5, 6, 7}).empty());
}

TEST(ConnectivityTest, ArticulationRestrictedToSubset) {
  // Cycle 0..5, but member subset {0,1,2,3} is a path -> 1, 2 are cuts.
  ContiguityGraph g = Cycle(6);
  ConnectivityChecker check(&g);
  std::vector<int32_t> cuts = check.ArticulationPoints({0, 1, 2, 3});
  EXPECT_EQ(cuts, (std::vector<int32_t>{1, 2}));
}

TEST(ConnectivityTest, ArticulationPointsAgreeWithBfsOnRandomGridRegions) {
  ContiguityGraph g = Grid(8, 8);
  ConnectivityChecker check(&g);
  Rng rng(77);
  for (int trial = 0; trial < 30; ++trial) {
    // Random connected-ish member set: a BFS ball around a random node.
    std::vector<int32_t> members;
    int32_t start = static_cast<int32_t>(rng.UniformInt(0, 63));
    members.push_back(start);
    for (int grow = 0; grow < 20; ++grow) {
      int32_t base = members[static_cast<size_t>(
          rng.UniformInt(0, static_cast<int64_t>(members.size()) - 1))];
      for (int32_t nb : g.NeighborsOf(base)) {
        if (std::find(members.begin(), members.end(), nb) == members.end()) {
          members.push_back(nb);
          break;
        }
      }
    }
    std::sort(members.begin(), members.end());
    if (!check.IsConnected(members)) continue;
    std::vector<int32_t> cuts = check.ArticulationPoints(members);
    for (int32_t v : members) {
      bool is_cut =
          std::find(cuts.begin(), cuts.end(), v) != cuts.end();
      EXPECT_EQ(is_cut, !check.IsConnectedWithout(members, v))
          << "node " << v << " trial " << trial;
    }
  }
}

TEST(ConnectivityTest, ReusableAcrossManyCalls) {
  ContiguityGraph g = Grid(5, 5);
  ConnectivityChecker check(&g);
  std::vector<int32_t> row = {0, 1, 2, 3, 4};
  for (int i = 0; i < 1000; ++i) {
    EXPECT_TRUE(check.IsConnected(row));
    EXPECT_FALSE(check.IsConnectedWithout(row, 2));
  }
}

}  // namespace
}  // namespace emp
