#include "graph/connectivity.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "common/rng.h"
#include "graph/components.h"

namespace emp {
namespace {

ContiguityGraph Path(int32_t n) {
  std::vector<std::pair<int32_t, int32_t>> edges;
  for (int32_t i = 0; i + 1 < n; ++i) edges.push_back({i, i + 1});
  return std::move(ContiguityGraph::FromEdges(n, edges)).value();
}

ContiguityGraph Cycle(int32_t n) {
  std::vector<std::pair<int32_t, int32_t>> edges;
  for (int32_t i = 0; i < n; ++i) edges.push_back({i, (i + 1) % n});
  return std::move(ContiguityGraph::FromEdges(n, edges)).value();
}

ContiguityGraph Grid(int32_t rows, int32_t cols) {
  std::vector<std::pair<int32_t, int32_t>> edges;
  for (int32_t r = 0; r < rows; ++r) {
    for (int32_t c = 0; c < cols; ++c) {
      int32_t id = r * cols + c;
      if (c + 1 < cols) edges.push_back({id, id + 1});
      if (r + 1 < rows) edges.push_back({id, id + cols});
    }
  }
  return std::move(ContiguityGraph::FromEdges(rows * cols, edges)).value();
}

TEST(ConnectivityTest, SingletonAndEmptyAreConnected) {
  ContiguityGraph g = Path(3);
  ConnectivityChecker check(&g);
  EXPECT_TRUE(check.IsConnected({}));
  EXPECT_TRUE(check.IsConnected({1}));
}

TEST(ConnectivityTest, PathSubsetsConnectivity) {
  ContiguityGraph g = Path(5);
  ConnectivityChecker check(&g);
  EXPECT_TRUE(check.IsConnected({1, 2, 3}));
  EXPECT_FALSE(check.IsConnected({0, 2}));
  EXPECT_FALSE(check.IsConnected({0, 1, 3, 4}));
}

TEST(ConnectivityTest, RemovingMiddleOfPathDisconnects) {
  ContiguityGraph g = Path(5);
  ConnectivityChecker check(&g);
  std::vector<int32_t> all = {0, 1, 2, 3, 4};
  EXPECT_FALSE(check.IsConnectedWithout(all, 2));
  EXPECT_TRUE(check.IsConnectedWithout(all, 0));
  EXPECT_TRUE(check.IsConnectedWithout(all, 4));
}

TEST(ConnectivityTest, CycleToleratesAnyRemoval) {
  ContiguityGraph g = Cycle(6);
  ConnectivityChecker check(&g);
  std::vector<int32_t> all = {0, 1, 2, 3, 4, 5};
  for (int32_t v : all) {
    EXPECT_TRUE(check.IsConnectedWithout(all, v)) << v;
  }
}

TEST(ConnectivityTest, TinySetsAlwaysSurviveRemoval) {
  ContiguityGraph g = Path(4);
  ConnectivityChecker check(&g);
  EXPECT_TRUE(check.IsConnectedWithout({0, 1}, 0));
  EXPECT_TRUE(check.IsConnectedWithout({2}, 2));
}

TEST(ConnectivityTest, CutVertexMatchesIsConnectedWithout) {
  ContiguityGraph g = Path(5);
  ConnectivityChecker check(&g);
  std::vector<int32_t> all = {0, 1, 2, 3, 4};
  EXPECT_TRUE(check.IsCutVertex(all, 1));
  EXPECT_FALSE(check.IsCutVertex(all, 4));
}

TEST(ConnectivityTest, ArticulationPointsOfPath) {
  ContiguityGraph g = Path(5);
  ConnectivityChecker check(&g);
  std::vector<int32_t> cuts = check.ArticulationPoints({0, 1, 2, 3, 4});
  EXPECT_EQ(cuts, (std::vector<int32_t>{1, 2, 3}));
}

TEST(ConnectivityTest, ArticulationPointsOfCycleAreEmpty) {
  ContiguityGraph g = Cycle(8);
  ConnectivityChecker check(&g);
  EXPECT_TRUE(
      check.ArticulationPoints({0, 1, 2, 3, 4, 5, 6, 7}).empty());
}

TEST(ConnectivityTest, ArticulationRestrictedToSubset) {
  // Cycle 0..5, but member subset {0,1,2,3} is a path -> 1, 2 are cuts.
  ContiguityGraph g = Cycle(6);
  ConnectivityChecker check(&g);
  std::vector<int32_t> cuts = check.ArticulationPoints({0, 1, 2, 3});
  EXPECT_EQ(cuts, (std::vector<int32_t>{1, 2}));
}

TEST(ConnectivityTest, ArticulationPointsAgreeWithBfsOnRandomGridRegions) {
  ContiguityGraph g = Grid(8, 8);
  ConnectivityChecker check(&g);
  Rng rng(77);
  for (int trial = 0; trial < 30; ++trial) {
    // Random connected-ish member set: a BFS ball around a random node.
    std::vector<int32_t> members;
    int32_t start = static_cast<int32_t>(rng.UniformInt(0, 63));
    members.push_back(start);
    for (int grow = 0; grow < 20; ++grow) {
      int32_t base = members[static_cast<size_t>(
          rng.UniformInt(0, static_cast<int64_t>(members.size()) - 1))];
      for (int32_t nb : g.NeighborsOf(base)) {
        if (std::find(members.begin(), members.end(), nb) == members.end()) {
          members.push_back(nb);
          break;
        }
      }
    }
    std::sort(members.begin(), members.end());
    if (!check.IsConnected(members)) continue;
    std::vector<int32_t> cuts = check.ArticulationPoints(members);
    for (int32_t v : members) {
      bool is_cut =
          std::find(cuts.begin(), cuts.end(), v) != cuts.end();
      EXPECT_EQ(is_cut, !check.IsConnectedWithout(members, v))
          << "node " << v << " trial " << trial;
    }
  }
}

TEST(ConnectivityTest, ArticulationRootIsCutVertex) {
  // Star: center 0 adjacent to leaves 1..4. Tarjan roots its DFS at the
  // lowest member id, so the center is the root here — the root-is-cut
  // special case (>= 2 DFS children) must still report it.
  std::vector<std::pair<int32_t, int32_t>> edges = {
      {0, 1}, {0, 2}, {0, 3}, {0, 4}};
  ContiguityGraph g = std::move(ContiguityGraph::FromEdges(5, edges)).value();
  ConnectivityChecker check(&g);
  EXPECT_EQ(check.ArticulationPoints({0, 1, 2, 3, 4}),
            (std::vector<int32_t>{0}));
  // A root with exactly one child in the induced subgraph is not a cut.
  EXPECT_TRUE(check.ArticulationPoints({0, 1}).empty());
}

TEST(ConnectivityTest, ArticulationToleratesDuplicateMembers) {
  ContiguityGraph g = Path(5);
  ConnectivityChecker check(&g);
  // Duplicates of interior AND extremal ids must not change the answer or
  // double-report a cut vertex.
  std::vector<int32_t> dup = {0, 0, 1, 2, 2, 3, 4, 4};
  EXPECT_EQ(check.ArticulationPoints(dup), (std::vector<int32_t>{1, 2, 3}));
  std::vector<int32_t> out;
  EXPECT_EQ(check.ArticulationPointsInto(dup, &out), 1);
  EXPECT_EQ(out, (std::vector<int32_t>{1, 2, 3}));
  // A single member listed twice: one component, no cuts.
  EXPECT_EQ(check.ArticulationPointsInto({3, 3}, &out), 1);
  EXPECT_TRUE(out.empty());
}

TEST(ConnectivityTest, ArticulationPointsIntoCountsComponents) {
  ContiguityGraph g = Path(6);
  ConnectivityChecker check(&g);
  std::vector<int32_t> out;
  EXPECT_EQ(check.ArticulationPointsInto({}, &out), 0);
  EXPECT_EQ(check.ArticulationPointsInto({2}, &out), 1);
  EXPECT_TRUE(out.empty());
  // {0,1} ∪ {3,4} -> two components; neither pair has a cut vertex.
  EXPECT_EQ(check.ArticulationPointsInto({0, 1, 3, 4}, &out), 2);
  EXPECT_TRUE(out.empty());
  // Three isolated members.
  EXPECT_EQ(check.ArticulationPointsInto({0, 2, 4}, &out), 3);
  EXPECT_TRUE(out.empty());
  // Disconnected set with a cut inside one component: {0,1,2} ∪ {4,5}.
  EXPECT_EQ(check.ArticulationPointsInto({0, 1, 2, 4, 5}, &out), 2);
  EXPECT_EQ(out, (std::vector<int32_t>{1}));
  // Two-member adjacency fast path.
  EXPECT_EQ(check.ArticulationPointsInto({2, 3}, &out), 1);
  EXPECT_EQ(check.ArticulationPointsInto({2, 4}, &out), 2);
}

TEST(ConnectivityTest, ArticulationPointsIntoMatchesAllocatingVariant) {
  ContiguityGraph g = Grid(6, 6);
  ConnectivityChecker check(&g);
  Rng rng(99);
  for (int trial = 0; trial < 40; ++trial) {
    // Random member set of random density — connected or not.
    std::vector<int32_t> members;
    for (int32_t v = 0; v < 36; ++v) {
      if (rng.UniformInt(0, 2) != 0) members.push_back(v);
    }
    std::vector<int32_t> out;
    const int32_t components = check.ArticulationPointsInto(members, &out);
    EXPECT_EQ(out, check.ArticulationPoints(members)) << "trial " << trial;
    // Cross-check every member against the exact BFS when connected; a
    // cut vertex and a disconnecting removal are the same thing there.
    if (components == 1) {
      for (int32_t v : members) {
        bool is_cut = std::find(out.begin(), out.end(), v) != out.end();
        if (members.size() <= 2) is_cut = false;  // removal leaves <= 1 node
        EXPECT_EQ(is_cut, !check.IsConnectedWithout(members, v))
            << "node " << v << " trial " << trial;
      }
    }
  }
}

TEST(ConnectivityTest, ReusableAcrossManyCalls) {
  ContiguityGraph g = Grid(5, 5);
  ConnectivityChecker check(&g);
  std::vector<int32_t> row = {0, 1, 2, 3, 4};
  for (int i = 0; i < 1000; ++i) {
    EXPECT_TRUE(check.IsConnected(row));
    EXPECT_FALSE(check.IsConnectedWithout(row, 2));
  }
}

}  // namespace
}  // namespace emp
