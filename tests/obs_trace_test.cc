#include "obs/trace.h"

#include <gtest/gtest.h>

#include "common/json.h"
#include "obs/metrics.h"

namespace emp {
namespace obs {
namespace {

TEST(TraceBufferTest, RecordsSpansAndInstants) {
  TraceBuffer buffer;
  buffer.RecordSpan("construction", 10, 250, /*worker=*/2);
  buffer.RecordInstant("tabu.heterogeneity", 123.5);
  std::vector<TraceEvent> events = buffer.Snapshot();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].name, "construction");
  EXPECT_EQ(events[0].start_us, 10);
  EXPECT_EQ(events[0].duration_us, 240);
  EXPECT_EQ(events[0].worker, 2);
  EXPECT_EQ(events[1].name, "tabu.heterogeneity");
  EXPECT_EQ(events[1].duration_us, -1);
  EXPECT_EQ(events[1].value, 123.5);
}

TEST(TraceBufferTest, DropsNewEventsWhenFull) {
  TraceBuffer buffer(/*capacity=*/2);
  buffer.RecordInstant("a", 1);
  buffer.RecordInstant("b", 2);
  buffer.RecordInstant("c", 3);  // dropped
  EXPECT_EQ(buffer.Snapshot().size(), 2u);
  EXPECT_EQ(buffer.dropped_events(), 1);
  EXPECT_EQ(buffer.Snapshot()[0].name, "a");  // old events survive
}

TEST(ScopedSpanTest, RecordsOnDestructionAndNestsInnerFirst) {
  TraceBuffer buffer;
  {
    ScopedSpan outer(&buffer, "phase");
    { ScopedSpan inner(&buffer, "step", /*worker=*/3); }
  }
  std::vector<TraceEvent> events = buffer.Snapshot();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].name, "step");  // inner destructs first
  EXPECT_EQ(events[0].worker, 3);
  EXPECT_EQ(events[1].name, "phase");
  EXPECT_GE(events[1].duration_us, events[0].duration_us);
}

TEST(ScopedSpanTest, NullBufferIsNoOp) {
  ScopedSpan span(nullptr, "nothing");  // must not crash at destruction
}

TEST(TraceBufferTest, ToJsonIsChromeTraceFormat) {
  TraceBuffer buffer(/*capacity=*/2);
  buffer.RecordSpan("solve", 0, 100, 0);
  buffer.RecordInstant("sample", 7.5, /*worker=*/1);
  buffer.RecordInstant("overflow", 1);  // dropped, must be counted
  auto doc = json::Parse(buffer.ToJson());
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  const json::Value* events = doc->Find("traceEvents");
  ASSERT_NE(events, nullptr);
  // Drops surface as a leading metadata record ahead of the retained
  // events, so trace viewers show the truncation on the timeline itself.
  ASSERT_EQ(events->AsArray().size(), 3u);
  const json::Value& meta = events->AsArray()[0];
  EXPECT_EQ(meta.Find("name")->AsString(), "dropped_events");
  EXPECT_EQ(meta.Find("ph")->AsString(), "M");
  EXPECT_EQ(meta.Find("args")->Find("dropped")->AsNumber(), 1);
  EXPECT_EQ(meta.Find("args")->Find("capacity")->AsNumber(), 2);
  const json::Value& span = events->AsArray()[1];
  EXPECT_EQ(span.Find("name")->AsString(), "solve");
  EXPECT_EQ(span.Find("ph")->AsString(), "X");
  EXPECT_EQ(span.Find("dur")->AsNumber(), 100);
  const json::Value& instant = events->AsArray()[2];
  EXPECT_EQ(instant.Find("ph")->AsString(), "i");
  EXPECT_EQ(doc->Find("droppedEvents")->AsNumber(), 1);
}

TEST(TraceBufferTest, NoMetadataRecordWithoutDrops) {
  TraceBuffer buffer(/*capacity=*/4);
  buffer.RecordInstant("a", 1);
  auto doc = json::Parse(buffer.ToJson());
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  ASSERT_EQ(doc->Find("traceEvents")->AsArray().size(), 1u);
}

TEST(TraceBufferTest, DropCounterTracksDropsAcrossAttach) {
  TraceBuffer buffer(/*capacity=*/1);
  buffer.RecordInstant("kept", 1);
  buffer.RecordInstant("lost-before-attach", 2);  // dropped, no registry yet
  MetricRegistry registry;
  buffer.AttachDropMetrics(&registry);  // back-fills the prior drop
  buffer.RecordInstant("lost-after-attach", 3);
  EXPECT_EQ(buffer.dropped_events(), 2);
  EXPECT_EQ(registry.GetCounter("emp_trace_dropped_events_total")->value(),
            2);
  buffer.AttachDropMetrics(nullptr);  // detach must be safe
  buffer.RecordInstant("lost-detached", 4);
  EXPECT_EQ(buffer.dropped_events(), 3);
}

}  // namespace
}  // namespace obs
}  // namespace emp
