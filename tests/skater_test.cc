#include "baseline/skater.h"

#include <gtest/gtest.h>

#include <set>

#include "baseline/maxp_regions.h"
#include "data/synthetic/dataset_catalog.h"
#include "graph/connectivity.h"
#include "test_util.h"

namespace emp {
namespace {

void ValidateSkater(const AreaSet& areas, const std::string& attr,
                    double threshold, const Solution& sol) {
  auto bc = BoundConstraints::Create(
      &areas, {Constraint::Sum(attr, threshold, kNoUpperBound)});
  ASSERT_TRUE(bc.ok());
  ConnectivityChecker connectivity(&areas.graph());
  std::set<int32_t> seen;
  for (const auto& region : sol.regions) {
    ASSERT_FALSE(region.empty());
    EXPECT_TRUE(connectivity.IsConnected(region));
    RegionStats stats(&*bc);
    for (int32_t a : region) {
      stats.Add(a);
      EXPECT_TRUE(seen.insert(a).second);
    }
    EXPECT_GE(stats.AggregateValue(0), threshold);
  }
}

TEST(SkaterTest, PartitionsAPath) {
  AreaSet areas = test::PathAreaSet({6, 6, 6, 6, 6, 6});
  SkaterMaxPSolver solver(&areas, "s", 12);
  auto sol = solver.Solve();
  ASSERT_TRUE(sol.ok()) << sol.status().ToString();
  EXPECT_EQ(sol->p(), 3);
  EXPECT_EQ(sol->num_unassigned(), 0);
  ValidateSkater(areas, "s", 12, *sol);
}

TEST(SkaterTest, LeftoverAttachesToARegion) {
  // Total 15, threshold 6: two regions (12 used) + leftover 3 attaches.
  AreaSet areas = test::PathAreaSet({3, 3, 3, 3, 3});
  SkaterMaxPSolver solver(&areas, "s", 6);
  auto sol = solver.Solve();
  ASSERT_TRUE(sol.ok());
  EXPECT_EQ(sol->p(), 2);
  EXPECT_EQ(sol->num_unassigned(), 0);
  ValidateSkater(areas, "s", 6, *sol);
}

TEST(SkaterTest, InfeasibleComponentStaysUnassigned) {
  // Component {0,1} totals 4 < 10; component {2,3} totals 20.
  auto graph = ContiguityGraph::FromEdges(4, {{0, 1}, {2, 3}});
  AreaSet areas =
      test::MakeAreaSet(std::move(graph).value(), {{"s", {2, 2, 10, 10}}});
  SkaterMaxPSolver solver(&areas, "s", 10);
  auto sol = solver.Solve();
  ASSERT_TRUE(sol.ok());
  EXPECT_EQ(sol->p(), 2);
  EXPECT_EQ(sol->num_unassigned(), 2);
  ValidateSkater(areas, "s", 10, *sol);
}

TEST(SkaterTest, FullyInfeasibleRejected) {
  AreaSet areas = test::PathAreaSet({1, 1});
  SkaterMaxPSolver solver(&areas, "s", 100);
  auto sol = solver.Solve();
  ASSERT_FALSE(sol.ok());
  EXPECT_EQ(sol.status().code(), StatusCode::kInfeasible);
}

TEST(SkaterTest, ComparableToMaxPOnSyntheticMap) {
  auto areas = synthetic::MakeCatalogDataset("small");
  ASSERT_TRUE(areas.ok());
  const double threshold = 20000;
  SolverOptions options;
  options.tabu_max_no_improve = 100;
  auto skater =
      SkaterMaxPSolver(&*areas, "TOTALPOP", threshold, options).Solve();
  auto mp = MaxPRegionsSolver(&*areas, "TOTALPOP", threshold, options).Solve();
  ASSERT_TRUE(skater.ok()) << skater.status().ToString();
  ASSERT_TRUE(mp.ok());
  ValidateSkater(*areas, "TOTALPOP", threshold, *skater);
  double ratio = static_cast<double>(skater->p()) / mp->p();
  EXPECT_GT(ratio, 0.5);
  EXPECT_LT(ratio, 1.5);
}

TEST(SkaterTest, TabuPolishNeverWorsens) {
  auto areas = synthetic::MakeCatalogDataset("tiny");
  ASSERT_TRUE(areas.ok());
  SkaterMaxPSolver solver(&*areas, "TOTALPOP", 30000);
  auto sol = solver.Solve();
  ASSERT_TRUE(sol.ok());
  EXPECT_LE(sol->heterogeneity,
            sol->heterogeneity_before_local_search + 1e-9);
}

TEST(SkaterTest, DeterministicAcrossRuns) {
  AreaSet areas = test::PathAreaSet({4, 8, 2, 9, 5, 7, 3});
  auto a = SkaterMaxPSolver(&areas, "s", 10).Solve();
  auto b = SkaterMaxPSolver(&areas, "s", 10).Solve();
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->region_of, b->region_of);
}

TEST(SkaterTest, CreateValidatesEagerly) {
  AreaSet areas = test::PathAreaSet({6, 6, 6, 6, 6, 6});
  EXPECT_FALSE(SkaterMaxPSolver::Create(nullptr, "s", 12).ok());
  EXPECT_FALSE(SkaterMaxPSolver::Create(&areas, "no_such_attr", 12).ok());
  EXPECT_FALSE(SkaterMaxPSolver::Create(&areas, "s", 0).ok());
  SolverOptions bad;
  bad.construction_threads = 0;
  EXPECT_FALSE(SkaterMaxPSolver::Create(&areas, "s", 12, bad).ok());

  auto solver = SkaterMaxPSolver::Create(&areas, "s", 12);
  ASSERT_TRUE(solver.ok()) << solver.status().ToString();
  auto sol = solver->Solve();
  ASSERT_TRUE(sol.ok()) << sol.status().ToString();
  EXPECT_EQ(sol->p(), 3);
}

}  // namespace
}  // namespace emp
