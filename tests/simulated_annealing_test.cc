#include "core/local_search/simulated_annealing.h"

#include <gtest/gtest.h>

#include "core/local_search/heterogeneity.h"
#include "core/local_search/objective.h"
#include "core/local_search/tabu.h"
#include "data/synthetic/dataset_catalog.h"
#include "test_util.h"

namespace emp {
namespace {

struct AnnealSetup {
  AnnealSetup(const AreaSet* areas_in, std::vector<Constraint> cs)
      : areas(areas_in),
        bound(std::move(BoundConstraints::Create(areas_in, std::move(cs)))
                  .value()),
        partition(&bound),
        connectivity(&areas_in->graph()) {}

  const AreaSet* areas;
  BoundConstraints bound;
  Partition partition;
  ConnectivityChecker connectivity;
};

TEST(SimulatedAnnealingTest, ImprovesAPoorSplit) {
  AreaSet areas = test::PathAreaSet({1, 1, 1, 9, 9, 9});
  AnnealSetup setup(&areas, {Constraint::Count(1, 6)});
  int32_t r1 = setup.partition.CreateRegion();
  int32_t r2 = setup.partition.CreateRegion();
  for (int32_t a : {0, 1}) setup.partition.Assign(a, r1);
  for (int32_t a : {2, 3, 4, 5}) setup.partition.Assign(a, r2);

  AnnealOptions options;
  options.iterations = 2000;
  options.seed = 5;
  auto result =
      SimulatedAnnealing(options, &setup.connectivity, &setup.partition);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_LT(result->final_objective, result->initial_objective);
  EXPECT_NEAR(ComputeHeterogeneity(setup.partition),
              result->final_objective, 1e-9);
}

TEST(SimulatedAnnealingTest, PreservesConstraintsAndP) {
  auto areas = synthetic::MakeCatalogDataset("tiny");
  ASSERT_TRUE(areas.ok());
  AnnealSetup setup(&*areas,
                    {Constraint::Sum("TOTALPOP", 20000, kNoUpperBound)});
  // Crude initial partition: contiguous id-stripes of ~12 areas.
  int32_t rid = -1;
  for (int32_t a = 0; a < areas->num_areas(); ++a) {
    if (a % 12 == 0) rid = setup.partition.CreateRegion();
    setup.partition.Assign(a, rid);
  }
  // Stripes by id may be disconnected; dissolve invalid ones first.
  for (int32_t r : setup.partition.AliveRegionIds()) {
    if (!setup.connectivity.IsConnected(setup.partition.region(r).areas) ||
        !setup.partition.region(r).stats.SatisfiesAll()) {
      setup.partition.DissolveRegion(r);
    }
  }
  const int32_t p_before = setup.partition.NumRegions();
  if (p_before == 0) GTEST_SKIP() << "no valid initial regions";

  AnnealOptions options;
  options.iterations = 3000;
  auto result =
      SimulatedAnnealing(options, &setup.connectivity, &setup.partition);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(setup.partition.NumRegions(), p_before);
  for (int32_t r : setup.partition.AliveRegionIds()) {
    EXPECT_TRUE(setup.partition.region(r).stats.SatisfiesAll());
    EXPECT_TRUE(
        setup.connectivity.IsConnected(setup.partition.region(r).areas));
  }
  EXPECT_LE(result->final_objective, result->initial_objective + 1e-9);
}

TEST(SimulatedAnnealingTest, WorksWithCompactnessObjective) {
  auto areas = synthetic::MakeCatalogDataset("tiny");
  ASSERT_TRUE(areas.ok());
  AnnealSetup setup(&*areas, {Constraint::Count(1, 200)});
  int32_t r1 = setup.partition.CreateRegion();
  int32_t r2 = setup.partition.CreateRegion();
  for (int32_t a = 0; a < areas->num_areas(); ++a) {
    setup.partition.Assign(a, a < areas->num_areas() / 2 ? r1 : r2);
  }
  auto obj = CompactnessObjective::Create(setup.partition);
  ASSERT_TRUE(obj.ok());
  AnnealOptions options;
  options.iterations = 4000;
  auto result = SimulatedAnnealing(options, &setup.connectivity,
                                   &setup.partition, obj->get());
  ASSERT_TRUE(result.ok());
  // Boundary-smoothing moves exist on a Voronoi map; compactness improves.
  EXPECT_LT(result->final_objective, result->initial_objective);
}

TEST(SimulatedAnnealingTest, DeterministicForFixedSeed) {
  AreaSet areas = test::MakeAreaSet(
      test::GridGraph(4, 4), {{"s", {5, 3, 8, 1, 9, 2, 7, 4, 6, 1, 8, 3,
                                     2, 9, 4, 7}}});
  for (int run = 0; run < 2; ++run) {
    AnnealSetup setup(&areas, {Constraint::Count(1, 16)});
    int32_t r1 = setup.partition.CreateRegion();
    int32_t r2 = setup.partition.CreateRegion();
    for (int32_t a = 0; a < 16; ++a) {
      setup.partition.Assign(a, a < 8 ? r1 : r2);
    }
    AnnealOptions options;
    options.iterations = 500;
    options.seed = 77;
    auto result =
        SimulatedAnnealing(options, &setup.connectivity, &setup.partition);
    ASSERT_TRUE(result.ok());
    static double first_final = -1;
    if (run == 0) {
      first_final = result->final_objective;
    } else {
      EXPECT_DOUBLE_EQ(result->final_objective, first_final);
    }
  }
}

TEST(SimulatedAnnealingTest, RejectsBadOptions) {
  AreaSet areas = test::PathAreaSet({1, 2});
  AnnealSetup setup(&areas, {});
  AnnealOptions bad;
  bad.cooling = 1.5;
  EXPECT_FALSE(
      SimulatedAnnealing(bad, &setup.connectivity, &setup.partition).ok());
  EXPECT_FALSE(SimulatedAnnealing({}, nullptr, &setup.partition).ok());
}

TEST(SimulatedAnnealingTest, ComparableToTabuOnSmallInstance) {
  AreaSet areas = test::MakeAreaSet(
      test::GridGraph(5, 5),
      {{"s", {12, 7, 9, 14, 6, 8, 11, 5, 13, 9, 10, 7, 12,
              6, 9, 11, 8, 14, 5, 10, 7, 13, 9, 6, 12}}});
  auto make_partition = [&](AnnealSetup* setup) {
    int32_t r1 = setup->partition.CreateRegion();
    int32_t r2 = setup->partition.CreateRegion();
    for (int32_t a = 0; a < 25; ++a) {
      setup->partition.Assign(a, a % 5 < 2 ? r1 : r2);
    }
  };
  AnnealSetup sa_setup(&areas, {Constraint::Count(1, 25)});
  make_partition(&sa_setup);
  AnnealOptions sa_options;
  sa_options.iterations = 5000;
  auto sa = SimulatedAnnealing(sa_options, &sa_setup.connectivity,
                               &sa_setup.partition);
  ASSERT_TRUE(sa.ok());

  AnnealSetup tabu_setup(&areas, {Constraint::Count(1, 25)});
  make_partition(&tabu_setup);
  SolverOptions tabu_options;
  tabu_options.tabu_max_no_improve = 200;
  auto tabu = TabuSearch(tabu_options, &tabu_setup.connectivity,
                         &tabu_setup.partition);
  ASSERT_TRUE(tabu.ok());

  // SA should land within 2x of Tabu's objective on this easy instance.
  EXPECT_LT(sa->final_objective,
            2.0 * tabu->final_heterogeneity + 1e-9);
}

}  // namespace
}  // namespace emp
