#include "core/local_search/simulated_annealing.h"

#include <gtest/gtest.h>

#include "core/local_search/heterogeneity.h"
#include "core/local_search/objective.h"
#include "core/local_search/tabu.h"
#include "data/synthetic/dataset_catalog.h"
#include "test_util.h"

namespace emp {
namespace {

struct AnnealSetup {
  AnnealSetup(const AreaSet* areas_in, std::vector<Constraint> cs)
      : areas(areas_in),
        bound(std::move(BoundConstraints::Create(areas_in, std::move(cs)))
                  .value()),
        partition(&bound),
        connectivity(&areas_in->graph()) {}

  const AreaSet* areas;
  BoundConstraints bound;
  Partition partition;
  ConnectivityChecker connectivity;
};

TEST(SimulatedAnnealingTest, ImprovesAPoorSplit) {
  AreaSet areas = test::PathAreaSet({1, 1, 1, 9, 9, 9});
  AnnealSetup setup(&areas, {Constraint::Count(1, 6)});
  int32_t r1 = setup.partition.CreateRegion();
  int32_t r2 = setup.partition.CreateRegion();
  for (int32_t a : {0, 1}) setup.partition.Assign(a, r1);
  for (int32_t a : {2, 3, 4, 5}) setup.partition.Assign(a, r2);

  AnnealOptions options;
  options.iterations = 2000;
  options.seed = 5;
  auto result =
      SimulatedAnnealing(options, &setup.connectivity, &setup.partition);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_LT(result->final_objective, result->initial_objective);
  EXPECT_NEAR(ComputeHeterogeneity(setup.partition),
              result->final_objective, 1e-9);
}

TEST(SimulatedAnnealingTest, PreservesConstraintsAndP) {
  auto areas = synthetic::MakeCatalogDataset("tiny");
  ASSERT_TRUE(areas.ok());
  AnnealSetup setup(&*areas,
                    {Constraint::Sum("TOTALPOP", 20000, kNoUpperBound)});
  // Crude initial partition: contiguous id-stripes of ~12 areas.
  int32_t rid = -1;
  for (int32_t a = 0; a < areas->num_areas(); ++a) {
    if (a % 12 == 0) rid = setup.partition.CreateRegion();
    setup.partition.Assign(a, rid);
  }
  // Stripes by id may be disconnected; dissolve invalid ones first.
  for (int32_t r : setup.partition.AliveRegionIds()) {
    if (!setup.connectivity.IsConnected(setup.partition.region(r).areas) ||
        !setup.partition.region(r).stats.SatisfiesAll()) {
      setup.partition.DissolveRegion(r);
    }
  }
  const int32_t p_before = setup.partition.NumRegions();
  if (p_before == 0) GTEST_SKIP() << "no valid initial regions";

  AnnealOptions options;
  options.iterations = 3000;
  auto result =
      SimulatedAnnealing(options, &setup.connectivity, &setup.partition);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(setup.partition.NumRegions(), p_before);
  for (int32_t r : setup.partition.AliveRegionIds()) {
    EXPECT_TRUE(setup.partition.region(r).stats.SatisfiesAll());
    EXPECT_TRUE(
        setup.connectivity.IsConnected(setup.partition.region(r).areas));
  }
  EXPECT_LE(result->final_objective, result->initial_objective + 1e-9);
}

TEST(SimulatedAnnealingTest, WorksWithCompactnessObjective) {
  auto areas = synthetic::MakeCatalogDataset("tiny");
  ASSERT_TRUE(areas.ok());
  AnnealSetup setup(&*areas, {Constraint::Count(1, 200)});
  int32_t r1 = setup.partition.CreateRegion();
  int32_t r2 = setup.partition.CreateRegion();
  for (int32_t a = 0; a < areas->num_areas(); ++a) {
    setup.partition.Assign(a, a < areas->num_areas() / 2 ? r1 : r2);
  }
  auto obj = CompactnessObjective::Create(setup.partition);
  ASSERT_TRUE(obj.ok());
  AnnealOptions options;
  options.iterations = 4000;
  auto result = SimulatedAnnealing(options, &setup.connectivity,
                                   &setup.partition, obj->get());
  ASSERT_TRUE(result.ok());
  // Boundary-smoothing moves exist on a Voronoi map; compactness improves.
  EXPECT_LT(result->final_objective, result->initial_objective);
}

TEST(SimulatedAnnealingTest, DeterministicForFixedSeed) {
  AreaSet areas = test::MakeAreaSet(
      test::GridGraph(4, 4), {{"s", {5, 3, 8, 1, 9, 2, 7, 4, 6, 1, 8, 3,
                                     2, 9, 4, 7}}});
  for (int run = 0; run < 2; ++run) {
    AnnealSetup setup(&areas, {Constraint::Count(1, 16)});
    int32_t r1 = setup.partition.CreateRegion();
    int32_t r2 = setup.partition.CreateRegion();
    for (int32_t a = 0; a < 16; ++a) {
      setup.partition.Assign(a, a < 8 ? r1 : r2);
    }
    AnnealOptions options;
    options.iterations = 500;
    options.seed = 77;
    auto result =
        SimulatedAnnealing(options, &setup.connectivity, &setup.partition);
    ASSERT_TRUE(result.ok());
    static double first_final = -1;
    if (run == 0) {
      first_final = result->final_objective;
    } else {
      EXPECT_DOUBLE_EQ(result->final_objective, first_final);
    }
  }
}

TEST(SimulatedAnnealingTest, RejectsBadOptions) {
  AreaSet areas = test::PathAreaSet({1, 2});
  AnnealSetup setup(&areas, {});
  AnnealOptions bad;
  bad.cooling = 1.5;
  EXPECT_FALSE(
      SimulatedAnnealing(bad, &setup.connectivity, &setup.partition).ok());
  EXPECT_FALSE(SimulatedAnnealing({}, nullptr, &setup.partition).ok());
}

TEST(SimulatedAnnealingTest, FirstProposalEvaluatedAtInitialTemperature) {
  // Regression: cooling used to run BEFORE the first acceptance decision,
  // so proposal 0 was judged at T0 * cooling instead of T0. With a huge T0
  // and a cooling factor that collapses the temperature to ~0 in one step,
  // only the fixed code can ever accept a worsening move.
  AreaSet areas = test::PathAreaSet({1, 1, 9, 9});
  AnnealSetup setup(&areas, {Constraint::Count(1, 4)});
  int32_t r1 = setup.partition.CreateRegion();
  int32_t r2 = setup.partition.CreateRegion();
  for (int32_t a : {0, 1}) setup.partition.Assign(a, r1);
  for (int32_t a : {2, 3}) setup.partition.Assign(a, r2);
  // H = 0: every admissible move strictly worsens the objective.

  AnnealOptions options;
  options.iterations = 8;
  options.initial_temperature = 1e18;  // accepts anything at T0
  options.cooling = 1e-300;            // ~0 after one cooling step
  options.seed = 3;
  auto result =
      SimulatedAnnealing(options, &setup.connectivity, &setup.partition);
  ASSERT_TRUE(result.ok());
  // Proposal 0 is judged at T0 = 1e18, so exp(-delta/T) ~ 1 and the first
  // worsening move is accepted. The buggy order would evaluate every
  // proposal at ~0 temperature and accept none.
  EXPECT_GE(result->accepted, 1);
  // The best partition (the unworsened start) is restored regardless.
  EXPECT_DOUBLE_EQ(result->final_objective, result->initial_objective);
  EXPECT_NEAR(ComputeHeterogeneity(setup.partition), 0.0, 1e-12);
}

TEST(SimulatedAnnealingTest, FailedSamplesAreNotProposals) {
  // Regression: a failed candidate sample used to be counted as a proposal
  // (and cooled the schedule) before the loop broke. Two singleton regions
  // admit no move at all, so the proposal count must be exactly zero.
  AreaSet areas = test::PathAreaSet({1, 9});
  AnnealSetup setup(&areas, {Constraint::Count(1, 2)});
  int32_t r1 = setup.partition.CreateRegion();
  int32_t r2 = setup.partition.CreateRegion();
  setup.partition.Assign(0, r1);
  setup.partition.Assign(1, r2);

  AnnealOptions options;
  options.iterations = 100;
  options.initial_temperature = 1.0;
  auto result =
      SimulatedAnnealing(options, &setup.connectivity, &setup.partition);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->proposals, 0);
  EXPECT_EQ(result->accepted, 0);
  EXPECT_DOUBLE_EQ(result->final_objective, result->initial_objective);
}

TEST(SimulatedAnnealingTest, PinnedAcceptanceScheduleForFixedSeed) {
  // Golden schedule: pins the exact (proposals, accepted, improving,
  // final objective) tuple for a fixed seed so any change to cooling
  // order, proposal accounting, or RNG consumption shows up as a diff.
  AreaSet areas = test::MakeAreaSet(
      test::GridGraph(4, 4), {{"s", {5, 3, 8, 1, 9, 2, 7, 4, 6, 1, 8, 3,
                                     2, 9, 4, 7}}});
  AnnealSetup setup(&areas, {Constraint::Count(1, 16)});
  int32_t r1 = setup.partition.CreateRegion();
  int32_t r2 = setup.partition.CreateRegion();
  for (int32_t a = 0; a < 16; ++a) {
    setup.partition.Assign(a, a < 8 ? r1 : r2);
  }
  AnnealOptions options;
  options.iterations = 400;
  options.initial_temperature = 8.0;
  options.cooling = 0.99;
  options.seed = 2026;
  auto result =
      SimulatedAnnealing(options, &setup.connectivity, &setup.partition);
  ASSERT_TRUE(result.ok());
  // Every loop pass samples successfully on this instance, so the full
  // schedule runs: exactly `iterations` proposals.
  EXPECT_EQ(result->proposals, 400);
  EXPECT_GE(result->accepted, 1);
  EXPECT_LE(result->accepted, result->proposals);
  EXPECT_GE(result->improving, 1);
  EXPECT_LE(result->improving, result->accepted);
  EXPECT_LT(result->final_objective, result->initial_objective);
  EXPECT_NEAR(ComputeHeterogeneity(setup.partition),
              result->final_objective, 1e-9);
}

TEST(SimulatedAnnealingTest, ComparableToTabuOnSmallInstance) {
  AreaSet areas = test::MakeAreaSet(
      test::GridGraph(5, 5),
      {{"s", {12, 7, 9, 14, 6, 8, 11, 5, 13, 9, 10, 7, 12,
              6, 9, 11, 8, 14, 5, 10, 7, 13, 9, 6, 12}}});
  auto make_partition = [&](AnnealSetup* setup) {
    int32_t r1 = setup->partition.CreateRegion();
    int32_t r2 = setup->partition.CreateRegion();
    for (int32_t a = 0; a < 25; ++a) {
      setup->partition.Assign(a, a % 5 < 2 ? r1 : r2);
    }
  };
  AnnealSetup sa_setup(&areas, {Constraint::Count(1, 25)});
  make_partition(&sa_setup);
  AnnealOptions sa_options;
  sa_options.iterations = 5000;
  auto sa = SimulatedAnnealing(sa_options, &sa_setup.connectivity,
                               &sa_setup.partition);
  ASSERT_TRUE(sa.ok());

  AnnealSetup tabu_setup(&areas, {Constraint::Count(1, 25)});
  make_partition(&tabu_setup);
  SolverOptions tabu_options;
  tabu_options.tabu_max_no_improve = 200;
  auto tabu = TabuSearch(tabu_options, &tabu_setup.connectivity,
                         &tabu_setup.partition);
  ASSERT_TRUE(tabu.ok());

  // SA should land within 2x of Tabu's objective on this easy instance.
  EXPECT_LT(sa->final_objective,
            2.0 * tabu->final_heterogeneity + 1e-9);
}

}  // namespace
}  // namespace emp
