#include "service/job_manager.h"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <future>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "constraints/query_parser.h"
#include "core/fact_solver.h"
#include "core/report.h"
#include "data/synthetic/dataset_catalog.h"
#include "obs/metrics.h"

namespace emp {
namespace service {
namespace {

/// Holds workers at the top of RunJob until released, and records which
/// jobs have started. Lets tests pin the scheduler into a known state
/// (worker busy, queue full) without sleeping.
class StartGate {
 public:
  std::function<void(int64_t)> Hook() {
    return [this](int64_t id) {
      {
        std::lock_guard<std::mutex> lock(mu_);
        started_.push_back(id);
      }
      cv_.notify_all();
      release_.wait();
    };
  }

  void WaitStarted(int64_t id) {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [&] {
      for (int64_t s : started_) {
        if (s == id) return true;
      }
      return false;
    });
  }

  /// One-shot: after this, the hook never blocks again.
  void Release() { promise_.set_value(); }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  std::vector<int64_t> started_;
  std::promise<void> promise_;
  std::shared_future<void> release_ = promise_.get_future().share();
};

JobRequest TinyRequest() {
  JobRequest request;
  request.instance = "tiny";
  request.query = "SUM(TOTALPOP) >= 20000";
  request.options.seed = 123;
  return request;
}

/// Drops the wall-clock timing lines so two reports of the same solution
/// compare bit-identically.
std::string ScrubTimings(const std::string& json) {
  std::istringstream in(json);
  std::string out;
  std::string line;
  while (std::getline(in, line)) {
    if (line.find("_seconds") != std::string::npos) continue;
    out += line;
    out += '\n';
  }
  return out;
}

TEST(JobManagerTest, SolvesToDoneWithResultAndJournal) {
  obs::MetricRegistry metrics;
  JobManager::Options options;
  options.workers = 1;
  options.metrics = &metrics;
  auto manager = JobManager::Create(options);
  ASSERT_TRUE(manager.ok()) << manager.status().ToString();

  auto submitted = (*manager)->Submit(TinyRequest());
  ASSERT_TRUE(submitted.ok()) << submitted.status().ToString();
  EXPECT_EQ(submitted->solver, "fact");
  EXPECT_EQ(submitted->instance, "tiny");
  EXPECT_EQ(submitted->instance_digest.size(), 16u);
  EXPECT_GE(submitted->queued_ms, 0);

  auto state = (*manager)->WaitTerminal(submitted->id);
  ASSERT_TRUE(state.ok()) << state.status().ToString();
  EXPECT_EQ(*state, JobState::kDone);

  auto snapshot = (*manager)->Get(submitted->id);
  ASSERT_TRUE(snapshot.ok());
  EXPECT_EQ(snapshot->state, JobState::kDone);
  EXPECT_EQ(snapshot->termination, "converged");
  EXPECT_NE(snapshot->result_json.find("\"p\""), std::string::npos);
  EXPECT_GE(snapshot->finished_ms, snapshot->started_ms);

  auto journal = (*manager)->JournalJsonl(submitted->id);
  ASSERT_TRUE(journal.ok());
  EXPECT_NE(journal->find("job_start"), std::string::npos);
  EXPECT_NE(journal->find(snapshot->instance_digest), std::string::npos);
  EXPECT_NE(journal->find("job_end"), std::string::npos);

  EXPECT_EQ(
      metrics.GetCounter("emp_service_jobs_submitted_total")->value(), 1);
  EXPECT_EQ(metrics.GetCounter("emp_service_jobs_finished_total")->value(),
            1);
}

/// The service path must not perturb the solve: the job's result report
/// is bit-identical (modulo wall-clock timings) to what the CLI path
/// produces from the same instance, query, and seed.
TEST(JobManagerTest, ResultIsBitIdenticalToCliPath) {
  auto manager = JobManager::Create({});
  ASSERT_TRUE(manager.ok()) << manager.status().ToString();
  auto submitted = (*manager)->Submit(TinyRequest());
  ASSERT_TRUE(submitted.ok()) << submitted.status().ToString();
  auto state = (*manager)->WaitTerminal(submitted->id);
  ASSERT_TRUE(state.ok());
  ASSERT_EQ(*state, JobState::kDone);
  auto snapshot = (*manager)->Get(submitted->id);
  ASSERT_TRUE(snapshot.ok());

  // The CLI path: load, parse, solve, report — same seed.
  auto areas = synthetic::MakeCatalogDataset("tiny");
  ASSERT_TRUE(areas.ok()) << areas.status().ToString();
  auto constraints = ParseConstraints("SUM(TOTALPOP) >= 20000");
  ASSERT_TRUE(constraints.ok()) << constraints.status().ToString();
  SolverOptions options;
  options.seed = 123;
  auto solver = FactSolver::Create(&*areas, *constraints, options);
  ASSERT_TRUE(solver.ok()) << solver.status().ToString();
  auto solution = solver->Solve();
  ASSERT_TRUE(solution.ok()) << solution.status().ToString();
  auto report = SolutionToJson(*areas, *constraints, *solution);
  ASSERT_TRUE(report.ok()) << report.status().ToString();

  EXPECT_EQ(ScrubTimings(snapshot->result_json), ScrubTimings(*report));
}

TEST(JobManagerTest, FullQueueRejectsWithRecordedVerdict) {
  StartGate gate;
  obs::MetricRegistry metrics;
  JobManager::Options options;
  options.workers = 1;
  options.queue_capacity = 1;
  options.metrics = &metrics;
  options.on_job_started = gate.Hook();
  auto manager = JobManager::Create(options);
  ASSERT_TRUE(manager.ok()) << manager.status().ToString();

  // A occupies the worker (held at the gate), B the single queue slot.
  auto a = (*manager)->Submit(TinyRequest());
  ASSERT_TRUE(a.ok()) << a.status().ToString();
  gate.WaitStarted(a->id);
  auto b = (*manager)->Submit(TinyRequest());
  ASSERT_TRUE(b.ok()) << b.status().ToString();
  EXPECT_EQ(b->state, JobState::kQueued);

  // C finds the queue full: rejected, but still a recorded job.
  auto c = (*manager)->Submit(TinyRequest());
  ASSERT_TRUE(c.ok()) << c.status().ToString();
  EXPECT_EQ(c->state, JobState::kRejected);
  EXPECT_NE(c->error.find("queue full"), std::string::npos) << c->error;
  auto c_again = (*manager)->Get(c->id);
  ASSERT_TRUE(c_again.ok());
  EXPECT_EQ(c_again->state, JobState::kRejected);
  EXPECT_EQ(metrics.GetCounter("emp_service_jobs_rejected_total")->value(),
            1);

  gate.Release();
  for (int64_t id : {a->id, b->id}) {
    auto state = (*manager)->WaitTerminal(id);
    ASSERT_TRUE(state.ok()) << state.status().ToString();
    EXPECT_EQ(*state, JobState::kDone);
  }
  EXPECT_EQ((*manager)->List().size(), 3u);
}

TEST(JobManagerTest, CancelQueuedJobIsImmediate) {
  StartGate gate;
  JobManager::Options options;
  options.workers = 1;
  options.queue_capacity = 2;
  options.on_job_started = gate.Hook();
  auto manager = JobManager::Create(options);
  ASSERT_TRUE(manager.ok()) << manager.status().ToString();

  auto running = (*manager)->Submit(TinyRequest());
  ASSERT_TRUE(running.ok());
  gate.WaitStarted(running->id);
  auto queued = (*manager)->Submit(TinyRequest());
  ASSERT_TRUE(queued.ok());

  auto cancelled = (*manager)->Cancel(queued->id);
  ASSERT_TRUE(cancelled.ok()) << cancelled.status().ToString();
  EXPECT_EQ(cancelled->state, JobState::kCancelled);
  EXPECT_LT(cancelled->started_ms, 0);  // never picked up

  gate.Release();
  auto state = (*manager)->WaitTerminal(running->id);
  ASSERT_TRUE(state.ok());
  EXPECT_EQ(*state, JobState::kDone);
}

TEST(JobManagerTest, CancelRunningJobStopsAtNextCheckpoint) {
  StartGate gate;
  JobManager::Options options;
  options.workers = 1;
  options.on_job_started = gate.Hook();
  auto manager = JobManager::Create(options);
  ASSERT_TRUE(manager.ok()) << manager.status().ToString();

  JobRequest request;
  request.instance = "2k";  // big enough that it cannot finish instantly
  request.query = "SUM(TOTALPOP) >= 10000";
  auto submitted = (*manager)->Submit(request);
  ASSERT_TRUE(submitted.ok()) << submitted.status().ToString();
  gate.WaitStarted(submitted->id);

  // Cancel while the worker is held at the gate: the token is set before
  // the solve's first supervision checkpoint, so the outcome is
  // deterministic.
  auto ack = (*manager)->Cancel(submitted->id);
  ASSERT_TRUE(ack.ok()) << ack.status().ToString();
  EXPECT_EQ(ack->state, JobState::kRunning);  // cooperative, not instant
  gate.Release();

  auto state = (*manager)->WaitTerminal(submitted->id);
  ASSERT_TRUE(state.ok()) << state.status().ToString();
  EXPECT_EQ(*state, JobState::kCancelled);
  auto snapshot = (*manager)->Get(submitted->id);
  ASSERT_TRUE(snapshot.ok());
  EXPECT_EQ(snapshot->termination, "cancelled");

  // Cancelling a terminal job is a no-op, not an error.
  auto again = (*manager)->Cancel(submitted->id);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->state, JobState::kCancelled);
}

TEST(JobManagerTest, DeadlineBudgetReportsDeadlineTermination) {
  auto manager = JobManager::Create({});
  ASSERT_TRUE(manager.ok()) << manager.status().ToString();

  JobRequest request;
  request.instance = "2k";
  request.query = "SUM(TOTALPOP) >= 10000";
  request.options.time_budget_ms = 50;
  auto submitted = (*manager)->Submit(request);
  ASSERT_TRUE(submitted.ok()) << submitted.status().ToString();

  auto state = (*manager)->WaitTerminal(submitted->id);
  ASSERT_TRUE(state.ok()) << state.status().ToString();
  auto snapshot = (*manager)->Get(submitted->id);
  ASSERT_TRUE(snapshot.ok());
  // A 50 ms budget cannot complete a 2k solve: the run is cut short and
  // says so, but still counts as done (a degraded solution is a result).
  EXPECT_EQ(snapshot->state, JobState::kDone);
  EXPECT_EQ(snapshot->termination, "deadline-exceeded");
}

TEST(JobManagerTest, BadRequestsFailEagerlyWithExactStatus) {
  auto manager = JobManager::Create({});
  ASSERT_TRUE(manager.ok()) << manager.status().ToString();

  JobRequest unknown_instance = TinyRequest();
  unknown_instance.instance = "atlantis";
  auto a = (*manager)->Submit(unknown_instance);
  ASSERT_FALSE(a.ok());
  EXPECT_EQ(a.status().code(), StatusCode::kNotFound);
  EXPECT_NE(a.status().message().find("instance 'atlantis'"),
            std::string::npos)
      << a.status().message();

  JobRequest bad_query = TinyRequest();
  bad_query.query = "FOO(TOTALPOP) >= 1";
  auto b = (*manager)->Submit(bad_query);
  ASSERT_FALSE(b.ok());
  EXPECT_EQ(b.status().message(), "unknown aggregate 'FOO'");

  JobRequest bad_attribute = TinyRequest();
  bad_attribute.query = "SUM(NO_SUCH_COLUMN) >= 1";
  auto c = (*manager)->Submit(bad_attribute);
  ASSERT_FALSE(c.ok());
  EXPECT_EQ(c.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(c.status().message(),
            "no attribute column named 'NO_SUCH_COLUMN'");

  JobRequest bad_solver = TinyRequest();
  bad_solver.solver = "simplex";
  auto d = (*manager)->Submit(bad_solver);
  ASSERT_FALSE(d.ok());
  EXPECT_EQ(d.status().code(), StatusCode::kNotFound);

  // None of these occupied a queue slot or recorded a job.
  EXPECT_TRUE((*manager)->List().empty());
}

TEST(JobManagerTest, WaitTerminalTimesOutOnHeldJob) {
  StartGate gate;
  JobManager::Options options;
  options.workers = 1;
  options.on_job_started = gate.Hook();
  auto manager = JobManager::Create(options);
  ASSERT_TRUE(manager.ok()) << manager.status().ToString();

  auto submitted = (*manager)->Submit(TinyRequest());
  ASSERT_TRUE(submitted.ok());
  gate.WaitStarted(submitted->id);

  auto timed_out = (*manager)->WaitTerminal(submitted->id, 20);
  ASSERT_FALSE(timed_out.ok());
  EXPECT_EQ(timed_out.status().code(), StatusCode::kFailedPrecondition);

  auto unknown = (*manager)->WaitTerminal(9999, 20);
  ASSERT_FALSE(unknown.ok());
  EXPECT_EQ(unknown.status().code(), StatusCode::kNotFound);

  gate.Release();
  auto state = (*manager)->WaitTerminal(submitted->id);
  ASSERT_TRUE(state.ok());
  EXPECT_EQ(*state, JobState::kDone);
}

TEST(JobManagerTest, ShutdownCancelsQueuedJobsAndRefusesNewOnes) {
  StartGate gate;
  JobManager::Options options;
  options.workers = 1;
  options.queue_capacity = 4;
  options.on_job_started = gate.Hook();
  auto manager = JobManager::Create(options);
  ASSERT_TRUE(manager.ok()) << manager.status().ToString();

  auto running = (*manager)->Submit(TinyRequest());
  ASSERT_TRUE(running.ok());
  gate.WaitStarted(running->id);
  auto queued = (*manager)->Submit(TinyRequest());
  ASSERT_TRUE(queued.ok());

  // Shut down while the worker is still held at the gate: the queued job
  // must go terminal without ever being picked up, and the running job's
  // token is cancelled before its solve begins.
  std::thread shutdown_thread([&] { (*manager)->Shutdown(); });
  auto queued_state = (*manager)->WaitTerminal(queued->id);
  ASSERT_TRUE(queued_state.ok()) << queued_state.status().ToString();
  EXPECT_EQ(*queued_state, JobState::kCancelled);
  gate.Release();
  shutdown_thread.join();

  auto queued_after = (*manager)->Get(queued->id);
  ASSERT_TRUE(queued_after.ok());
  EXPECT_EQ(queued_after->state, JobState::kCancelled);
  EXPECT_EQ(queued_after->error, "cancelled by shutdown");
  auto running_after = (*manager)->Get(running->id);
  ASSERT_TRUE(running_after.ok());
  EXPECT_EQ(running_after->state, JobState::kCancelled);

  auto refused = (*manager)->Submit(TinyRequest());
  ASSERT_FALSE(refused.ok());
  EXPECT_EQ(refused.status().code(), StatusCode::kFailedPrecondition);
}

/// The acceptance scenario: more concurrent submitters than worker + queue
/// slots. Every request must come back with a terminal verdict — done or
/// rejected — and nothing may hang. Run under TSan via
/// tools/run_sanitized_tests.sh.
TEST(JobManagerTest, ConcurrentSubmissionsAllReachTerminalVerdicts) {
  JobManager::Options options;
  options.workers = 2;
  options.queue_capacity = 4;
  auto manager = JobManager::Create(options);
  ASSERT_TRUE(manager.ok()) << manager.status().ToString();

  constexpr int kClients = 8;
  std::vector<std::thread> clients;
  std::vector<int64_t> ids(kClients, -1);
  std::vector<JobState> admissions(kClients, JobState::kQueued);
  std::atomic<int> errors{0};
  for (int i = 0; i < kClients; ++i) {
    clients.emplace_back([&, i] {
      JobRequest request = TinyRequest();
      request.options.seed = 1000 + i;
      auto submitted = (*manager)->Submit(request);
      if (!submitted.ok()) {
        errors.fetch_add(1);
        return;
      }
      ids[i] = submitted->id;
      admissions[i] = submitted->state;
    });
  }
  for (auto& t : clients) t.join();
  EXPECT_EQ(errors.load(), 0);

  int done = 0;
  int rejected = 0;
  for (int i = 0; i < kClients; ++i) {
    ASSERT_GE(ids[i], 0) << "client " << i << " recorded no job";
    if (admissions[i] == JobState::kRejected) {
      ++rejected;
      continue;
    }
    auto state = (*manager)->WaitTerminal(ids[i], 60000);
    ASSERT_TRUE(state.ok()) << state.status().ToString();
    ASSERT_EQ(*state, JobState::kDone);
    ++done;
  }
  EXPECT_EQ(done + rejected, kClients);
  EXPECT_GE(done, 1);  // the pool made progress
  EXPECT_EQ((*manager)->List().size(), static_cast<size_t>(kClients));
}

// List()'s documented contract: ascending job id, which is submission
// order — a dashboard polling /jobs sees jobs in the order clients
// submitted them, regardless of completion order.
TEST(JobManagerTest, ListIsSubmissionOrdered) {
  JobManager::Options options;
  options.workers = 2;
  auto manager = JobManager::Create(options);
  ASSERT_TRUE(manager.ok()) << manager.status().ToString();

  std::vector<int64_t> submitted_order;
  for (int i = 0; i < 5; ++i) {
    JobRequest request = TinyRequest();
    request.options.seed = 100 + static_cast<uint64_t>(i);
    auto submitted = (*manager)->Submit(request);
    ASSERT_TRUE(submitted.ok()) << submitted.status().ToString();
    submitted_order.push_back(submitted->id);
  }
  for (int64_t id : submitted_order) {
    ASSERT_TRUE((*manager)->WaitTerminal(id).ok());
  }
  // Two workers finished these in whatever order; the listing must not
  // reflect that.
  std::vector<JobSnapshot> listed = (*manager)->List();
  ASSERT_EQ(listed.size(), submitted_order.size());
  for (size_t i = 0; i < listed.size(); ++i) {
    EXPECT_EQ(listed[i].id, submitted_order[i]) << "position " << i;
    if (i > 0) EXPECT_GT(listed[i].id, listed[i - 1].id);
  }
}

TEST(JobManagerTest, TraceAndCurveSurfaceThroughManager) {
  auto manager = JobManager::Create({});
  ASSERT_TRUE(manager.ok()) << manager.status().ToString();
  auto submitted = (*manager)->Submit(TinyRequest());
  ASSERT_TRUE(submitted.ok()) << submitted.status().ToString();
  // The trace id exists from admission (before the job even runs) and is
  // stable for the job's lifetime.
  EXPECT_EQ(submitted->trace_id.size(), 16u);
  auto state = (*manager)->WaitTerminal(submitted->id);
  ASSERT_TRUE(state.ok());
  ASSERT_EQ(*state, JobState::kDone);
  auto snapshot = (*manager)->Get(submitted->id);
  ASSERT_TRUE(snapshot.ok());
  EXPECT_EQ(snapshot->trace_id, submitted->trace_id);

  auto trace = (*manager)->TraceJson(submitted->id);
  ASSERT_TRUE(trace.ok()) << trace.status().ToString();
  EXPECT_NE(trace->find("\"queue.wait\""), std::string::npos);
  EXPECT_NE(trace->find("\"instance.bind\""), std::string::npos);
  EXPECT_NE(trace->find(submitted->trace_id), std::string::npos);

  auto curve = (*manager)->CurveJson(submitted->id);
  ASSERT_TRUE(curve.ok()) << curve.status().ToString();
  EXPECT_NE(curve->find("\"samples\""), std::string::npos);
  EXPECT_NE(curve->find("\"best_p\""), std::string::npos);

  // The journal carries the trace id in job_start and the full anytime
  // curve as its own record — with job_end still the last line.
  auto journal = (*manager)->JournalJsonl(submitted->id);
  ASSERT_TRUE(journal.ok());
  EXPECT_NE(journal->find(submitted->trace_id), std::string::npos);
  EXPECT_NE(journal->find("anytime_curve"), std::string::npos);
  const size_t last_line_start =
      journal->rfind('\n', journal->size() - 2);
  EXPECT_NE(journal->find("job_end", last_line_start),
            std::string::npos);

  // Both endpoints 404 for unknown jobs.
  EXPECT_FALSE((*manager)->TraceJson(9999).ok());
  EXPECT_FALSE((*manager)->CurveJson(9999).ok());

  // The terminal job landed in the stats plane.
  EXPECT_EQ((*manager)->stats().recorded_jobs(), 1);
  EXPECT_NE((*manager)->StatsJson().find("\"fact\""), std::string::npos);
}

TEST(JobManagerTest, CreateValidatesPoolShape) {
  JobManager::Options bad_workers;
  bad_workers.workers = 0;
  EXPECT_FALSE(JobManager::Create(bad_workers).ok());
  JobManager::Options bad_queue;
  bad_queue.queue_capacity = 0;
  EXPECT_FALSE(JobManager::Create(bad_queue).ok());
}

}  // namespace
}  // namespace service
}  // namespace emp
