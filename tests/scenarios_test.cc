#include "data/synthetic/scenarios.h"

#include <gtest/gtest.h>

#include "core/fact_solver.h"
#include "graph/components.h"

namespace emp {
namespace synthetic {
namespace {

TEST(ScenariosTest, CovidCityCarriesPolicyAttributes) {
  auto city = MakeCovidCity(400, 7);
  ASSERT_TRUE(city.ok()) << city.status().ToString();
  EXPECT_EQ(city->num_areas(), 400);
  EXPECT_TRUE(city->attributes().HasColumn("INCOME"));
  EXPECT_TRUE(city->attributes().HasColumn("TRANSIT"));
  EXPECT_TRUE(city->attributes().HasColumn("TOTALPOP"));
  EXPECT_EQ(city->dissimilarity_attribute(), "INCOME");
  EXPECT_EQ(ConnectedComponents(city->graph()).count, 1);
  auto income = city->attributes().Stats("INCOME");
  ASSERT_TRUE(income.ok());
  EXPECT_GT(income->mean, 2500);
  EXPECT_LT(income->mean, 6500);
}

TEST(ScenariosTest, CovidPolicyQuerySolves) {
  auto city = MakeCovidCity(400, 7);
  ASSERT_TRUE(city.ok());
  auto sol = SolveEmp(*city, {
      Constraint::Sum("TOTALPOP", 100000, kNoUpperBound),
      Constraint::Avg("INCOME", 3000, 5000),
      Constraint::Sum("TRANSIT", 5000, kNoUpperBound),
  });
  ASSERT_TRUE(sol.ok()) << sol.status().ToString();
  EXPECT_GE(sol->p(), 1);
}

TEST(ScenariosTest, GrowthStateAttributeRanges) {
  auto state = MakeGrowthState(500, 3);
  ASSERT_TRUE(state.ok());
  auto dropout = state->attributes().Stats("DROPOUT");
  ASSERT_TRUE(dropout.ok());
  EXPECT_GE(dropout->min, 0.0);
  EXPECT_LE(dropout->max, 40.0);
  auto age = state->attributes().Stats("AVGAGE");
  ASSERT_TRUE(age.ok());
  EXPECT_GE(age->min, 18.0);
  EXPECT_LE(age->max, 70.0);
  EXPECT_NEAR(age->mean, 37.0, 2.0);
}

TEST(ScenariosTest, PatrolCityWorkloadShape) {
  auto city = MakePatrolCity(500, 5);
  ASSERT_TRUE(city.ok());
  EXPECT_EQ(city->dissimilarity_attribute(), "RESPONSE_MIN");
  auto calls = city->attributes().Stats("CALLS");
  ASSERT_TRUE(calls.ok());
  EXPECT_GE(calls->min, 5.0);
  // Lognormal: mean above median-ish anchor of 120.
  EXPECT_GT(calls->mean, 110);
}

TEST(ScenariosTest, DeterministicPerSeed) {
  auto a = MakePatrolCity(200, 42);
  auto b = MakePatrolCity(200, 42);
  auto c = MakePatrolCity(200, 43);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_TRUE(c.ok());
  EXPECT_DOUBLE_EQ(a->attributes().Value(0, 17), b->attributes().Value(0, 17));
  int same = 0;
  for (int32_t i = 0; i < 200; ++i) {
    if (a->attributes().Value(0, i) == c->attributes().Value(0, i)) ++same;
  }
  EXPECT_LT(same, 20);
}

}  // namespace
}  // namespace synthetic
}  // namespace emp
