#include "data/loader.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "data/synthetic/dataset_catalog.h"
#include "graph/components.h"

namespace emp {
namespace {

/// Three unit squares in a row as loader CSV (WKT commas written as ';').
constexpr char kThreeSquares[] =
    "WKT,POP,EMP\n"
    "POLYGON ((0 0; 1 0; 1 1; 0 1; 0 0)),100,10\n"
    "POLYGON ((1 0; 2 0; 2 1; 1 1; 1 0)),200,20\n"
    "POLYGON ((2 0; 3 0; 3 1; 2 1; 2 0)),300,30\n";

TEST(LoaderTest, LoadsAreasAttributesAndAdjacency) {
  auto areas = LoadAreaSetFromCsvText(kThreeSquares);
  ASSERT_TRUE(areas.ok()) << areas.status().ToString();
  EXPECT_EQ(areas->num_areas(), 3);
  EXPECT_TRUE(areas->has_geometry());
  EXPECT_TRUE(areas->attributes().HasColumn("POP"));
  EXPECT_TRUE(areas->attributes().HasColumn("EMP"));
  EXPECT_DOUBLE_EQ(areas->attributes().Value(0, 1), 200);
  // Adjacency: 0-1 and 1-2 share borders; 0-2 do not.
  EXPECT_TRUE(areas->graph().HasEdge(0, 1));
  EXPECT_TRUE(areas->graph().HasEdge(1, 2));
  EXPECT_FALSE(areas->graph().HasEdge(0, 2));
}

TEST(LoaderTest, DiagonalTouchIsNotAdjacency) {
  // Two squares meeting only at a corner point.
  const char* csv =
      "WKT,V\n"
      "POLYGON ((0 0; 1 0; 1 1; 0 1; 0 0)),1\n"
      "POLYGON ((1 1; 2 1; 2 2; 1 2; 1 1)),2\n";
  auto areas = LoadAreaSetFromCsvText(csv);
  ASSERT_TRUE(areas.ok());
  EXPECT_FALSE(areas->graph().HasEdge(0, 1));
}

TEST(LoaderTest, QueenContiguityConnectsCornerTouch) {
  const char* csv =
      "WKT,V\n"
      "POLYGON ((0 0; 1 0; 1 1; 0 1; 0 0)),1\n"
      "POLYGON ((1 1; 2 1; 2 2; 1 2; 1 1)),2\n"
      "POLYGON ((5 5; 6 5; 6 6; 5 6; 5 5)),3\n";
  LoaderOptions options;
  options.queen = true;
  auto areas = LoadAreaSetFromCsvText(csv, options);
  ASSERT_TRUE(areas.ok());
  EXPECT_TRUE(areas->graph().HasEdge(0, 1));   // corner touch counts
  EXPECT_FALSE(areas->graph().HasEdge(0, 2));  // disjoint still apart
}

TEST(LoaderTest, CustomGeometryColumnAndDissimilarity) {
  const char* csv =
      "pop,shape\n"
      "5,POLYGON ((0 0; 1 0; 0 1; 0 0))\n"
      "7,POLYGON ((1 0; 2 0; 1 1; 1 0))\n";
  LoaderOptions options;
  options.geometry_column = "shape";
  options.dissimilarity_attribute = "pop";
  auto areas = LoadAreaSetFromCsvText(csv, options);
  ASSERT_TRUE(areas.ok()) << areas.status().ToString();
  EXPECT_EQ(areas->dissimilarity_attribute(), "pop");
}

TEST(LoaderTest, RejectsMissingGeometryColumn) {
  auto areas = LoadAreaSetFromCsvText("A,B\n1,2\n");
  ASSERT_FALSE(areas.ok());
  EXPECT_EQ(areas.status().code(), StatusCode::kInvalidArgument);
}

TEST(LoaderTest, RejectsBadWkt) {
  auto areas = LoadAreaSetFromCsvText("WKT,V\nnot-a-polygon,1\n");
  ASSERT_FALSE(areas.ok());
  EXPECT_EQ(areas.status().code(), StatusCode::kIOError);
}

TEST(LoaderTest, RejectsNonNumericAttribute) {
  const char* csv =
      "WKT,V\n"
      "POLYGON ((0 0; 1 0; 0 1; 0 0)),abc\n";
  auto areas = LoadAreaSetFromCsvText(csv);
  ASSERT_FALSE(areas.ok());
}

TEST(LoaderTest, RejectsEmptyAndGeometryOnly) {
  EXPECT_FALSE(LoadAreaSetFromCsvText("WKT\n").ok());
  EXPECT_FALSE(
      LoadAreaSetFromCsvText("WKT\nPOLYGON ((0 0; 1 0; 0 1; 0 0))\n").ok());
}

TEST(LoaderTest, RoundTripsSyntheticMap) {
  auto original = synthetic::MakeCatalogDataset("tiny");
  ASSERT_TRUE(original.ok());
  auto csv = AreaSetToCsvText(*original);
  ASSERT_TRUE(csv.ok());
  LoaderOptions options;
  options.dissimilarity_attribute = "HOUSEHOLDS";
  auto reloaded = LoadAreaSetFromCsvText(*csv, options);
  ASSERT_TRUE(reloaded.ok()) << reloaded.status().ToString();
  ASSERT_EQ(reloaded->num_areas(), original->num_areas());
  // Attributes survive.
  for (int32_t a = 0; a < original->num_areas(); ++a) {
    EXPECT_NEAR(reloaded->attributes().Value(0, a),
                original->attributes().Value(0, a), 1e-6);
  }
  // Geometric adjacency recovered from WKT matches the Voronoi adjacency.
  int64_t mismatches = 0;
  for (int32_t a = 0; a < original->num_areas(); ++a) {
    if (!std::ranges::equal(reloaded->graph().NeighborsOf(a),
                            original->graph().NeighborsOf(a))) {
      ++mismatches;
    }
  }
  // Tolerate rare borderline slivers from coordinate rounding.
  EXPECT_LE(mismatches, original->num_areas() / 20);
}

TEST(LoaderTest, ExportRequiresGeometry) {
  AttributeTable t(1);
  ASSERT_TRUE(t.AddColumn("X", {1}).ok());
  auto graph = ContiguityGraph::FromEdges(1, {});
  auto areas = AreaSet::CreateWithoutGeometry("g", std::move(graph).value(),
                                              std::move(t), "X");
  ASSERT_TRUE(areas.ok());
  EXPECT_FALSE(AreaSetToCsvText(*areas).ok());
}

}  // namespace
}  // namespace emp
