#include "graph/gal.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>

#include "data/synthetic/dataset_catalog.h"
#include "test_util.h"

namespace emp {
namespace {

TEST(GalTest, SerializesSimpleGraph) {
  ContiguityGraph g = test::PathGraph(3);
  std::string gal = ToGal(g);
  EXPECT_EQ(gal, "3\n0 1\n1\n1 2\n0 2\n2 1\n1\n");
}

TEST(GalTest, RoundTripsPath) {
  ContiguityGraph g = test::PathGraph(5);
  auto parsed = FromGal(ToGal(g));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ASSERT_EQ(parsed->num_nodes(), 5);
  for (int32_t v = 0; v < 5; ++v) {
    EXPECT_TRUE(std::ranges::equal(parsed->NeighborsOf(v), g.NeighborsOf(v)));
  }
}

TEST(GalTest, RoundTripsSyntheticMap) {
  auto areas = synthetic::MakeCatalogDataset("tiny");
  ASSERT_TRUE(areas.ok());
  auto parsed = FromGal(ToGal(areas->graph()));
  ASSERT_TRUE(parsed.ok());
  ASSERT_EQ(parsed->num_nodes(), areas->num_areas());
  EXPECT_EQ(parsed->num_edges(), areas->graph().num_edges());
  for (int32_t v = 0; v < parsed->num_nodes(); ++v) {
    EXPECT_TRUE(std::ranges::equal(parsed->NeighborsOf(v),
                                   areas->graph().NeighborsOf(v)));
  }
}

TEST(GalTest, AcceptsGeoDaHeader) {
  auto parsed = FromGal("0 3 map.shp POLY_ID\n0 1\n1\n1 2\n0 2\n2 1\n1\n");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->num_nodes(), 3);
  EXPECT_TRUE(parsed->HasEdge(0, 1));
}

TEST(GalTest, SymmetrizesOneSidedLists) {
  auto parsed = FromGal("2\n0 1\n1\n1 0\n");  // node 1 lists no neighbors
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(parsed->HasEdge(1, 0));
}

TEST(GalTest, IsolatedNodesSupported) {
  auto parsed = FromGal("3\n0 0\n1 1\n2\n2 1\n1\n");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->DegreeOf(0), 0);
  EXPECT_TRUE(parsed->HasEdge(1, 2));
}

TEST(GalTest, RejectsMalformedInput) {
  EXPECT_FALSE(FromGal("").ok());
  EXPECT_FALSE(FromGal("abc").ok());
  EXPECT_FALSE(FromGal("2\n0 3\n1 1\n").ok());    // degree beyond EOF
  EXPECT_FALSE(FromGal("2\n0 1\n7\n").ok());      // neighbor out of range
  EXPECT_FALSE(FromGal("2\n5 1\n0\n").ok());      // id out of range
  EXPECT_FALSE(FromGal("2\n0\n").ok());           // missing degree
}

TEST(GalTest, FileRoundTrip) {
  ContiguityGraph g = test::GridGraph(4, 4);
  std::string path = testing::TempDir() + "/emp_test.gal";
  ASSERT_TRUE(WriteGalFile(path, g).ok());
  auto parsed = ReadGalFile(path);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->num_edges(), g.num_edges());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace emp
