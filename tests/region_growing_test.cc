#include "core/construction/region_growing.h"

#include <gtest/gtest.h>

#include "graph/connectivity.h"
#include "test_util.h"

namespace emp {
namespace {

struct GrowSetup {
  GrowSetup(const AreaSet* areas, std::vector<Constraint> cs)
      : bound(std::move(BoundConstraints::Create(areas, std::move(cs)))
                  .value()),
        feasibility(std::move(CheckFeasibility(bound)).value()),
        seeding(SelectSeeds(bound, feasibility)),
        partition(&bound) {
    for (int32_t a : feasibility.invalid_areas) partition.Deactivate(a);
  }

  Status Grow(SolverOptions options = {}, uint64_t seed = 1) {
    Rng rng(seed);
    return GrowRegions(seeding, options, &rng, &partition, &stats);
  }

  BoundConstraints bound;
  FeasibilityReport feasibility;
  SeedingResult seeding;
  Partition partition;
  RegionGrowingStats stats;
};

void ExpectRegionsContiguous(const Partition& partition,
                             const AreaSet& areas) {
  ConnectivityChecker check(&areas.graph());
  ConnectivityChecker* c = &check;
  for (int32_t rid : partition.AliveRegionIds()) {
    EXPECT_TRUE(c->IsConnected(partition.region(rid).areas))
        << "region " << rid;
  }
}

TEST(RegionGrowingTest, NoCentralityMakesSingletonSeedRegionsAbsorbRest) {
  // MIN seeds are areas with s in [2, 4]; no AVG constraint, so each seed
  // starts a region and the rest attach to neighbors.
  AreaSet areas = test::PathAreaSet({3, 9, 2, 8, 4});
  GrowSetup setup(&areas, {Constraint::Min("s", 2, 4)});
  ASSERT_TRUE(setup.Grow().ok());
  EXPECT_EQ(setup.stats.regions_from_avg_seeds, 3);  // areas 0, 2, 4
  EXPECT_EQ(setup.partition.UnassignedAreas().size(), 0u);
  ExpectRegionsContiguous(setup.partition, areas);
  // Every region satisfies the MIN constraint.
  for (int32_t rid : setup.partition.AliveRegionIds()) {
    EXPECT_TRUE(setup.partition.region(rid).stats.SatisfiesAll());
  }
}

TEST(RegionGrowingTest, PaperRunningExampleAlgorithm1) {
  // Mirrors Fig. 2: c = (AVG, s, 4, 5); seeds pair up low/high values.
  // Path: 2 - 6 - 4 - 3 - 7 (values), all seeds (no extrema constraints).
  AreaSet areas = test::PathAreaSet({2, 6, 4, 3, 7});
  GrowSetup setup(&areas, {Constraint::Avg("s", 4, 5)});
  ASSERT_TRUE(setup.Grow().ok());
  ExpectRegionsContiguous(setup.partition, areas);
  for (int32_t rid : setup.partition.AliveRegionIds()) {
    double avg = setup.partition.region(rid).stats.AggregateValue(0);
    EXPECT_GE(avg, 4.0);
    EXPECT_LE(avg, 5.0);
  }
  // The in-range seed (s=4) plus at least one merged region must exist.
  EXPECT_GE(setup.partition.NumRegions(), 1);
}

TEST(RegionGrowingTest, Algorithm1RevertsWhenNoOppositeNeighbor) {
  // Single low area isolated among other low areas: no region can reach
  // the AVG range, everything stays unassigned.
  AreaSet areas = test::PathAreaSet({1, 1, 1, 1});
  GrowSetup setup(&areas, {Constraint::Avg("s", 10, 20)});
  ASSERT_TRUE(setup.Grow().ok());
  EXPECT_EQ(setup.partition.NumRegions(), 0);
  EXPECT_EQ(setup.partition.UnassignedAreas().size(), 4u);
  EXPECT_GT(setup.stats.algorithm1_reverts, 0);
}

TEST(RegionGrowingTest, InRangeAreasJoinNeighborRegions) {
  // Seeds s=4 and s=5 in range; area s=4.5 joins either without breaking.
  AreaSet areas = test::PathAreaSet({4, 4.5, 5});
  GrowSetup setup(&areas, {Constraint::Avg("s", 4, 5)});
  ASSERT_TRUE(setup.Grow().ok());
  EXPECT_EQ(setup.partition.UnassignedAreas().size(), 0u);
  for (int32_t rid : setup.partition.AliveRegionIds()) {
    double avg = setup.partition.region(rid).stats.AggregateValue(0);
    EXPECT_GE(avg, 4.0);
    EXPECT_LE(avg, 5.0);
  }
}

TEST(RegionGrowingTest, Round2MergesRegionsToAbsorbEnclave) {
  // Mirrors Fig. 3: a low enclave needs two regions merged to be absorbed.
  // Values chosen so no single region accepts s=2 but a merged one does:
  //   path: 2 - 6 - 4 - 5 - 3 ... c = (AVG, 4, 5)
  // Seeds: all. 6 pairs with 2? Algorithm 1 starts from unassigned_low in
  // pickup order; use a deterministic check only on the outcome invariant.
  AreaSet areas = test::PathAreaSet({2, 6, 4, 5, 3, 7});
  GrowSetup setup(&areas, {Constraint::Avg("s", 4, 5)});
  ASSERT_TRUE(setup.Grow().ok());
  ExpectRegionsContiguous(setup.partition, areas);
  for (int32_t rid : setup.partition.AliveRegionIds()) {
    double avg = setup.partition.region(rid).stats.AggregateValue(0);
    EXPECT_GE(avg, 4.0);
    EXPECT_LE(avg, 5.0);
  }
}

TEST(RegionGrowingTest, Substep23MergesForAllExtremaConstraints) {
  // MIN seeds (s in [2,3]) and MAX seeds (s in [8,9]) on a path; every
  // final region must contain one of each.
  AreaSet areas = test::PathAreaSet({2, 8, 3, 9, 2, 8});
  GrowSetup setup(&areas, {Constraint::Min("s", 2, 3),
                           Constraint::Max("s", 8, 9)});
  ASSERT_TRUE(setup.Grow().ok());
  EXPECT_GE(setup.partition.NumRegions(), 1);
  for (int32_t rid : setup.partition.AliveRegionIds()) {
    const RegionStats& rs = setup.partition.region(rid).stats;
    EXPECT_TRUE(rs.Satisfies(0)) << "MIN violated in region " << rid;
    EXPECT_TRUE(rs.Satisfies(1)) << "MAX violated in region " << rid;
  }
  ExpectRegionsContiguous(setup.partition, areas);
}

TEST(RegionGrowingTest, DissolvesRegionsThatCannotSatisfyAllExtrema) {
  // Two disconnected pairs; the second component has no MAX seed, so its
  // region dissolves.
  auto graph = ContiguityGraph::FromEdges(4, {{0, 1}, {2, 3}});
  AreaSet areas = test::MakeAreaSet(std::move(graph).value(),
                                    {{"s", {2, 9, 3, 3}}});
  GrowSetup setup(&areas, {Constraint::Min("s", 2, 3),
                           Constraint::Max("s", 8, 9)});
  ASSERT_TRUE(setup.Grow().ok());
  EXPECT_EQ(setup.partition.NumRegions(), 1);
  EXPECT_GT(setup.stats.regions_dissolved, 0);
  // Areas 2, 3 remain unassigned.
  auto u = setup.partition.UnassignedAreas();
  EXPECT_EQ(u, (std::vector<int32_t>{2, 3}));
}

TEST(RegionGrowingTest, RequiresEmptyPartition) {
  AreaSet areas = test::PathAreaSet({1, 2});
  GrowSetup setup(&areas, {});
  setup.partition.CreateRegion();
  setup.partition.Assign(0, 0);
  Rng rng(1);
  Status st = GrowRegions(setup.seeding, {}, &rng, &setup.partition);
  EXPECT_EQ(st.code(), StatusCode::kFailedPrecondition);
}

TEST(RegionGrowingTest, PickupOrdersAllProduceValidPartitions) {
  AreaSet areas = test::MakeAreaSet(
      test::GridGraph(4, 4),
      {{"s", {2, 6, 4, 3, 7, 5, 2, 8, 4, 6, 3, 7, 5, 2, 8, 4}}});
  for (PickupOrder order : {PickupOrder::kRandom, PickupOrder::kAscending,
                            PickupOrder::kDescending}) {
    GrowSetup setup(&areas, {Constraint::Avg("s", 4, 5)});
    SolverOptions options;
    options.pickup_order = order;
    ASSERT_TRUE(setup.Grow(options).ok());
    ExpectRegionsContiguous(setup.partition, areas);
    for (int32_t rid : setup.partition.AliveRegionIds()) {
      double avg = setup.partition.region(rid).stats.AggregateValue(0);
      EXPECT_GE(avg, 4.0);
      EXPECT_LE(avg, 5.0);
    }
  }
}

TEST(RegionGrowingTest, MergeLimitZeroDisablesRound2) {
  AreaSet areas = test::PathAreaSet({2, 6, 4, 5, 3, 7});
  GrowSetup with_merges(&areas, {Constraint::Avg("s", 4, 5)});
  SolverOptions no_merge;
  no_merge.avg_merge_limit = 0;
  ASSERT_TRUE(with_merges.Grow(no_merge).ok());
  EXPECT_EQ(with_merges.stats.round2_merges, 0);
}

}  // namespace
}  // namespace emp
