#include "common/json.h"

#include <gtest/gtest.h>

namespace emp {
namespace json {
namespace {

TEST(JsonTest, ParsesScalars) {
  EXPECT_TRUE(Parse("null")->is_null());
  EXPECT_TRUE(Parse("true")->AsBool());
  EXPECT_FALSE(Parse("false")->AsBool());
  EXPECT_DOUBLE_EQ(Parse("3.25")->AsNumber(), 3.25);
  EXPECT_DOUBLE_EQ(Parse("-1e3")->AsNumber(), -1000.0);
  EXPECT_EQ(Parse("\"hi\"")->AsString(), "hi");
}

TEST(JsonTest, ParsesNestedStructures) {
  auto v = Parse(R"({"a": [1, 2, {"b": true}], "c": "x"})");
  ASSERT_TRUE(v.ok()) << v.status().ToString();
  ASSERT_TRUE(v->is_object());
  const Value* a = v->Find("a");
  ASSERT_NE(a, nullptr);
  ASSERT_TRUE(a->is_array());
  ASSERT_EQ(a->AsArray().size(), 3u);
  EXPECT_DOUBLE_EQ(a->AsArray()[1].AsNumber(), 2.0);
  const Value* b = a->AsArray()[2].Find("b");
  ASSERT_NE(b, nullptr);
  EXPECT_TRUE(b->AsBool());
  EXPECT_EQ(v->Find("c")->AsString(), "x");
  EXPECT_EQ(v->Find("missing"), nullptr);
}

TEST(JsonTest, ObjectPreservesKeyOrder) {
  auto v = Parse(R"({"z": 1, "a": 2})");
  ASSERT_TRUE(v.ok());
  ASSERT_EQ(v->AsObject().size(), 2u);
  EXPECT_EQ(v->AsObject()[0].first, "z");
  EXPECT_EQ(v->AsObject()[1].first, "a");
}

TEST(JsonTest, StringEscapes) {
  auto v = Parse(R"("line\nquote\"back\\slash\/tab\t")");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->AsString(), "line\nquote\"back\\slash/tab\t");
}

TEST(JsonTest, UnicodeEscapes) {
  auto v = Parse(R"("Aé€")");  // A, é, €
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->AsString(), "A\xC3\xA9\xE2\x82\xAC");
}

TEST(JsonTest, EmptyContainers) {
  EXPECT_TRUE(Parse("{}")->AsObject().empty());
  EXPECT_TRUE(Parse("[]")->AsArray().empty());
  EXPECT_TRUE(Parse("  [ ]  ")->is_array());
}

TEST(JsonTest, RejectsMalformedInput) {
  EXPECT_FALSE(Parse("").ok());
  EXPECT_FALSE(Parse("{").ok());
  EXPECT_FALSE(Parse("[1, 2").ok());
  EXPECT_FALSE(Parse("{\"a\" 1}").ok());
  EXPECT_FALSE(Parse("{\"a\": 1,}").ok());
  EXPECT_FALSE(Parse("\"unterminated").ok());
  EXPECT_FALSE(Parse("1 2").ok());
  EXPECT_FALSE(Parse("nul").ok());
  EXPECT_FALSE(Parse("\"bad \\x escape\"").ok());
}

TEST(JsonTest, RejectsExcessiveNesting) {
  std::string deep(1000, '[');
  deep += std::string(1000, ']');
  EXPECT_FALSE(Parse(deep).ok());
}

TEST(JsonTest, ParsesOwnSolutionReportShape) {
  auto v = Parse(R"({"p": 3, "regions": [{"id": 0, "areas": [1, 2]}],
                     "bound": "inf"})");
  ASSERT_TRUE(v.ok());
  EXPECT_DOUBLE_EQ(v->Find("p")->AsNumber(), 3);
  EXPECT_EQ(v->Find("bound")->AsString(), "inf");
}

}  // namespace
}  // namespace json
}  // namespace emp
