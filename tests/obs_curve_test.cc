#include "obs/curve.h"

#include <gtest/gtest.h>

#include <chrono>
#include <thread>
#include <vector>

#include "common/json.h"
#include "core/fact_solver.h"
#include "data/synthetic/dataset_catalog.h"

namespace emp {
namespace obs {
namespace {

TEST(AnytimeCurveTest, RecordsImprovementsWithCarriedState) {
  AnytimeCurve curve;
  curve.OnBestP(5, /*evaluations=*/10);
  curve.OnHeterogeneity(123.5, /*evaluations=*/20);
  curve.OnBestP(7, /*evaluations=*/30);
  std::vector<AnytimeCurve::Sample> samples = curve.Snapshot();
  ASSERT_EQ(samples.size(), 3u);
  EXPECT_EQ(samples[0].best_p, 5);
  EXPECT_FALSE(samples[0].has_heterogeneity);
  EXPECT_EQ(samples[0].evaluations, 10);
  // Heterogeneity arrives; best_p carries forward.
  EXPECT_EQ(samples[1].best_p, 5);
  EXPECT_TRUE(samples[1].has_heterogeneity);
  EXPECT_EQ(samples[1].heterogeneity, 123.5);
  // p improves; heterogeneity carries forward.
  EXPECT_EQ(samples[2].best_p, 7);
  EXPECT_TRUE(samples[2].has_heterogeneity);
  EXPECT_EQ(samples[2].heterogeneity, 123.5);
}

TEST(AnytimeCurveTest, DropsNewSamplesWhenFull) {
  AnytimeCurve curve(/*capacity=*/2);
  curve.OnBestP(1, 1);
  curve.OnBestP(2, 2);
  curve.OnBestP(3, 3);  // dropped
  EXPECT_EQ(curve.Snapshot().size(), 2u);
  EXPECT_EQ(curve.dropped(), 1);
  EXPECT_EQ(curve.Snapshot()[0].best_p, 1);  // early samples survive
}

TEST(AnytimeCurveTest, TickIsRateLimited) {
  AnytimeCurve curve(/*capacity=*/64, /*tick_interval_ms=*/1000000);
  curve.OnBestP(4, 5);
  // Immediately after a retained sample, ticks are within the interval
  // and must record nothing (and count nothing as dropped).
  curve.Tick(6);
  curve.Tick(7);
  EXPECT_EQ(curve.Snapshot().size(), 1u);
  EXPECT_EQ(curve.dropped(), 0);
}

TEST(AnytimeCurveTest, TickRecordsAfterInterval) {
  // The interval is clamped to >= 1 ms, so sleep past it to make the
  // next tick due.
  AnytimeCurve curve(/*capacity=*/64, /*tick_interval_ms=*/1);
  curve.OnBestP(4, 5);
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  curve.Tick(6);
  std::vector<AnytimeCurve::Sample> samples = curve.Snapshot();
  ASSERT_EQ(samples.size(), 2u);
  EXPECT_EQ(samples[1].best_p, 4);  // tick repeats the incumbent state
  EXPECT_EQ(samples[1].evaluations, 6);
}

TEST(AnytimeCurveTest, ToJsonShape) {
  AnytimeCurve curve(/*capacity=*/2);
  curve.OnBestP(3, 100);
  curve.OnHeterogeneity(7.25, 200);
  curve.OnBestP(4, 300);  // dropped
  auto doc = json::Parse(curve.ToJson());
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  const json::Value* samples = doc->Find("samples");
  ASSERT_NE(samples, nullptr);
  ASSERT_EQ(samples->AsArray().size(), 2u);
  const json::Value& first = samples->AsArray()[0];
  EXPECT_EQ(first.Find("best_p")->AsNumber(), 3);
  EXPECT_TRUE(first.Find("heterogeneity")->is_null());
  EXPECT_EQ(first.Find("evaluations")->AsNumber(), 100);
  const json::Value& second = samples->AsArray()[1];
  EXPECT_EQ(second.Find("heterogeneity")->AsNumber(), 7.25);
  EXPECT_EQ(doc->Find("dropped")->AsNumber(), 1);
  EXPECT_EQ(doc->Find("capacity")->AsNumber(), 2);
}

TEST(AnytimeCurveTest, ConcurrentWritersLoseNothingBelowCapacity) {
  AnytimeCurve curve(/*capacity=*/4096);
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&curve, t] {
      for (int i = 0; i < 100; ++i) {
        curve.OnBestP(t * 1000 + i, i);
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(curve.Snapshot().size(), 400u);
  EXPECT_EQ(curve.dropped(), 0);
}

/// The PR-5 discipline check: a fixed-seed solve with the recorder
/// attached must be bit-identical to one without, because the recorder
/// only reads solver state.
TEST(AnytimeCurveTest, RecorderDoesNotPerturbFixedSeedSolve) {
  auto areas = synthetic::MakeDefaultDataset("curve", 250, /*seed=*/7);
  ASSERT_TRUE(areas.ok()) << areas.status().ToString();
  std::vector<Constraint> cs = {
      Constraint::Sum("TOTALPOP", 20000, kNoUpperBound)};
  SolverOptions options;
  options.seed = 1234;
  options.construction_iterations = 4;

  FactSolver solver(&*areas, cs, options);
  RunContext plain_ctx = MakeRunContext(options);
  auto plain = solver.Solve(plain_ctx);
  ASSERT_TRUE(plain.ok()) << plain.status().ToString();

  AnytimeCurve curve;
  RunContext curve_ctx = MakeRunContext(options);
  curve_ctx.curve = &curve;
  auto instrumented = solver.Solve(curve_ctx);
  ASSERT_TRUE(instrumented.ok()) << instrumented.status().ToString();

  EXPECT_EQ(instrumented->p(), plain->p());
  EXPECT_EQ(instrumented->region_of, plain->region_of);
  EXPECT_DOUBLE_EQ(instrumented->heterogeneity, plain->heterogeneity);

  // And the curve actually recorded the trajectory: at least the
  // construction best-p sample and a terminal heterogeneity sample.
  std::vector<AnytimeCurve::Sample> samples = curve.Snapshot();
  ASSERT_GE(samples.size(), 2u);
  EXPECT_EQ(samples.back().best_p, instrumented->p());
  ASSERT_TRUE(samples.back().has_heterogeneity);
  EXPECT_DOUBLE_EQ(samples.back().heterogeneity,
                   instrumented->heterogeneity);
}

/// Same discipline through the portfolio path: replicas publish
/// incumbent improvements into one shared recorder.
TEST(AnytimeCurveTest, PortfolioSolveFeedsSharedCurve) {
  auto areas = synthetic::MakeDefaultDataset("curvep", 200, /*seed=*/3);
  ASSERT_TRUE(areas.ok()) << areas.status().ToString();
  std::vector<Constraint> cs = {
      Constraint::Sum("TOTALPOP", 20000, kNoUpperBound)};
  SolverOptions options;
  options.seed = 99;
  options.portfolio_replicas = 2;
  options.portfolio_threads = 2;

  FactSolver solver(&*areas, cs, options);
  RunContext plain_ctx = MakeRunContext(options);
  auto plain = solver.Solve(plain_ctx);
  ASSERT_TRUE(plain.ok()) << plain.status().ToString();

  AnytimeCurve curve;
  RunContext curve_ctx = MakeRunContext(options);
  curve_ctx.curve = &curve;
  auto instrumented = solver.Solve(curve_ctx);
  ASSERT_TRUE(instrumented.ok()) << instrumented.status().ToString();

  EXPECT_EQ(instrumented->p(), plain->p());
  EXPECT_EQ(instrumented->region_of, plain->region_of);
  EXPECT_DOUBLE_EQ(instrumented->heterogeneity, plain->heterogeneity);
  EXPECT_GE(curve.Snapshot().size(), 1u);
}

}  // namespace
}  // namespace obs
}  // namespace emp
