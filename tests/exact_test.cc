#include "core/exact.h"

#include <gtest/gtest.h>

#include "core/fact_solver.h"
#include "test_util.h"

namespace emp {
namespace {

TEST(ExactTest, TrivialSingleRegion) {
  AreaSet areas = test::PathAreaSet({5, 5});
  auto sol = SolveExact(areas, {Constraint::Sum("s", 10, kNoUpperBound)});
  ASSERT_TRUE(sol.ok()) << sol.status().ToString();
  EXPECT_EQ(sol->p, 1);
  EXPECT_EQ(sol->region_of, (std::vector<int32_t>{0, 0}));
}

TEST(ExactTest, MaximizesP) {
  // Path 6 6 6 6 with SUM >= 6: optimum is four singleton regions.
  AreaSet areas = test::PathAreaSet({6, 6, 6, 6});
  auto sol = SolveExact(areas, {Constraint::Sum("s", 6, kNoUpperBound)});
  ASSERT_TRUE(sol.ok());
  EXPECT_EQ(sol->p, 4);
}

TEST(ExactTest, RespectsContiguity) {
  // Path 5 1 5 with SUM >= 5: {0} and {2} can be regions; 1 can join
  // either; p = 2 optimal. No region may be {0, 2} (not contiguous).
  AreaSet areas = test::PathAreaSet({5, 1, 5});
  auto sol = SolveExact(areas, {Constraint::Sum("s", 5, kNoUpperBound)});
  ASSERT_TRUE(sol.ok());
  EXPECT_EQ(sol->p, 2);
  EXPECT_NE(sol->region_of[0], sol->region_of[2]);
}

TEST(ExactTest, TieBrokenByHeterogeneity) {
  // Values 1 1 9 9 with COUNT = 2 forced: two p=2 splits exist —
  // {01}{23} (H = 0) and... {0}{1,2}? COUNT in [2,2] forces pairs:
  // {01}{23} H=0 or {12}{0,3}? 0 and 3 not adjacent -> invalid. So the
  // optimum pairs equal values.
  AreaSet areas = test::PathAreaSet({1, 1, 9, 9});
  auto sol = SolveExact(areas, {Constraint::Count(2, 2)});
  ASSERT_TRUE(sol.ok());
  EXPECT_EQ(sol->p, 2);
  EXPECT_DOUBLE_EQ(sol->heterogeneity, 0.0);
  EXPECT_EQ(sol->region_of[0], sol->region_of[1]);
  EXPECT_EQ(sol->region_of[2], sol->region_of[3]);
}

TEST(ExactTest, UnassignedAreasAllowed) {
  // MAX constraint filters the big outlier; it must stay unassigned.
  AreaSet areas = test::PathAreaSet({3, 100, 3});
  auto sol = SolveExact(areas, {Constraint::Max("s", kNoLowerBound, 10),
                                Constraint::Sum("s", 3, kNoUpperBound)});
  ASSERT_TRUE(sol.ok());
  EXPECT_EQ(sol->region_of[1], -1);
  EXPECT_EQ(sol->p, 2);  // {0} and {2}, split by the outlier
}

TEST(ExactTest, InfeasibleWhenNoRegionPossible) {
  AreaSet areas = test::PathAreaSet({1, 1, 1});
  auto sol = SolveExact(areas, {Constraint::Sum("s", 100, kNoUpperBound)});
  ASSERT_FALSE(sol.ok());
  EXPECT_EQ(sol.status().code(), StatusCode::kInfeasible);
}

TEST(ExactTest, RejectsOversizedInstances) {
  AreaSet areas = test::PathAreaSet(std::vector<double>(20, 1.0));
  auto sol = SolveExact(areas, {Constraint::Count(1, 20)});
  ASSERT_FALSE(sol.ok());
  EXPECT_EQ(sol.status().code(), StatusCode::kInvalidArgument);
}

TEST(ExactTest, AvgConstraintHandledExactly) {
  // Path 2 6 4 with AVG in [4, 5]: best p is 2: {4} and {2,6}.
  AreaSet areas = test::PathAreaSet({2, 6, 4});
  auto sol = SolveExact(areas, {Constraint::Avg("s", 4, 5)});
  ASSERT_TRUE(sol.ok());
  EXPECT_EQ(sol->p, 2);
}

TEST(ExactTest, FactNeverBeatsExactOnGrids) {
  // Heuristic sanity: FaCT's p can never exceed the exact optimum, and on
  // these tiny instances it should be close.
  struct Case {
    std::vector<double> values;
    std::vector<Constraint> constraints;
  };
  const Case cases[] = {
      {{6, 2, 7, 3, 8, 4, 9, 5, 6},
       {Constraint::Sum("s", 10, kNoUpperBound)}},
      {{6, 2, 7, 3, 8, 4, 9, 5, 6}, {Constraint::Avg("s", 4, 6)}},
      {{6, 2, 7, 3, 8, 4, 9, 5, 6},
       {Constraint::Min("s", 2, 5), Constraint::Count(2, 5)}},
  };
  for (const Case& c : cases) {
    AreaSet areas =
        test::MakeAreaSet(test::GridGraph(3, 3), {{"s", c.values}});
    auto exact = SolveExact(areas, c.constraints);
    ASSERT_TRUE(exact.ok()) << exact.status().ToString();
    SolverOptions options;
    options.construction_iterations = 8;
    auto fact = SolveEmp(areas, c.constraints, options);
    ASSERT_TRUE(fact.ok()) << fact.status().ToString();
    EXPECT_LE(fact->p(), exact->p);
    EXPECT_GE(fact->p(), (exact->p + 1) / 2) << "heuristic gap too large";
  }
}

TEST(ExactTest, ReportsSearchEffort) {
  AreaSet areas = test::PathAreaSet({5, 5, 5});
  auto sol = SolveExact(areas, {Constraint::Sum("s", 5, kNoUpperBound)});
  ASSERT_TRUE(sol.ok());
  EXPECT_GT(sol->assignments_evaluated, 0);
}

TEST(ExactTest, FaultInjectionKeepsIncumbent) {
  // Trip the search after a handful of checkpoints: the incumbent found
  // so far comes back with the fault verdict instead of an error.
  AreaSet areas = test::PathAreaSet({6, 6, 6, 6});
  RunContext ctx;
  ctx.fault_hook = [](const SupervisionCheckpoint& cp)
      -> std::optional<TerminationReason> {
    if (cp.phase == "exact" && cp.index >= 20) {
      return TerminationReason::kFaultInjected;
    }
    return std::nullopt;
  };
  PhaseSupervisor supervisor(&ctx, "exact");
  auto sol = SolveExact(areas, {Constraint::Sum("s", 6, kNoUpperBound)},
                        ExactOptions{}, &supervisor);
  ASSERT_TRUE(sol.ok()) << sol.status().ToString();
  EXPECT_EQ(sol->termination, TerminationReason::kFaultInjected);
  // Depth-first search visits full assignments early, so an incumbent
  // exists; it cannot claim optimality but must be internally valid.
  EXPECT_GE(sol->p, 1);
  EXPECT_LE(sol->p, 4);
}

TEST(ExactTest, InterruptedBeforeAnyIncumbentIsNotInfeasible) {
  // An immediate trip (checkpoint 0) leaves p = 0 — which must NOT be
  // reported as kInfeasible: infeasibility was never proven.
  AreaSet areas = test::PathAreaSet({6, 6, 6, 6});
  RunContext ctx;
  ctx.cancel.Cancel();
  PhaseSupervisor supervisor(&ctx, "exact");
  auto sol = SolveExact(areas, {Constraint::Sum("s", 6, kNoUpperBound)},
                        ExactOptions{}, &supervisor);
  ASSERT_TRUE(sol.ok()) << sol.status().ToString();
  EXPECT_EQ(sol->termination, TerminationReason::kCancelled);
  EXPECT_EQ(sol->p, 0);
}

TEST(ExactTest, DeadlineExpiryStopsTheSearch) {
  AreaSet areas = test::MakeAreaSet(
      test::GridGraph(3, 3), {{"s", {6, 2, 7, 3, 8, 4, 9, 5, 6}}});
  RunContext ctx;
  ctx.deadline = Deadline::AfterMillis(0);
  PhaseSupervisor supervisor(&ctx, "exact");
  auto sol = SolveExact(areas, {Constraint::Sum("s", 10, kNoUpperBound)},
                        ExactOptions{}, &supervisor);
  ASSERT_TRUE(sol.ok()) << sol.status().ToString();
  EXPECT_EQ(sol->termination, TerminationReason::kDeadlineExceeded);
}

TEST(ExactTest, UninterruptedRunReportsConverged) {
  AreaSet areas = test::PathAreaSet({6, 6, 6, 6});
  RunContext ctx;
  PhaseSupervisor supervisor(&ctx, "exact");
  auto sol = SolveExact(areas, {Constraint::Sum("s", 6, kNoUpperBound)},
                        ExactOptions{}, &supervisor);
  ASSERT_TRUE(sol.ok());
  EXPECT_EQ(sol->termination, TerminationReason::kConverged);
  EXPECT_EQ(sol->p, 4);
}

}  // namespace
}  // namespace emp
