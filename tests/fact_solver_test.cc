#include "core/fact_solver.h"

#include <gtest/gtest.h>

#include <set>

#include "data/synthetic/dataset_catalog.h"
#include "graph/connectivity.h"
#include "test_util.h"

namespace emp {
namespace {

/// End-to-end output validation: disjoint regions, contiguity, constraint
/// satisfaction, U0 bookkeeping.
void ValidateSolution(const AreaSet& areas,
                      const std::vector<Constraint>& constraints,
                      const Solution& sol) {
  // Region/unassigned partition covers every area exactly once.
  ASSERT_EQ(sol.region_of.size(), static_cast<size_t>(areas.num_areas()));
  std::set<int32_t> seen;
  for (size_t rid = 0; rid < sol.regions.size(); ++rid) {
    for (int32_t a : sol.regions[rid]) {
      EXPECT_TRUE(seen.insert(a).second) << "area in two regions";
      EXPECT_EQ(sol.region_of[static_cast<size_t>(a)],
                static_cast<int32_t>(rid));
    }
  }
  for (int32_t a : sol.unassigned) {
    EXPECT_TRUE(seen.insert(a).second) << "unassigned area also in a region";
    EXPECT_EQ(sol.region_of[static_cast<size_t>(a)], -1);
  }
  EXPECT_EQ(seen.size(), static_cast<size_t>(areas.num_areas()));

  // Contiguity and constraints per region.
  auto bc = BoundConstraints::Create(&areas, constraints);
  ASSERT_TRUE(bc.ok());
  ConnectivityChecker connectivity(&areas.graph());
  for (const auto& region : sol.regions) {
    EXPECT_FALSE(region.empty());
    EXPECT_TRUE(connectivity.IsConnected(region));
    RegionStats stats(&*bc);
    for (int32_t a : region) stats.Add(a);
    EXPECT_TRUE(stats.SatisfiesAll());
  }
}

TEST(FactSolverTest, SingleSumConstraintPartitionsEverything) {
  AreaSet areas = test::MakeAreaSet(
      test::GridGraph(5, 5),
      {{"pop", {12, 7, 9, 14, 6, 8, 11, 5, 13, 9, 10, 7, 12,
                6, 9, 11, 8, 14, 5, 10, 7, 13, 9, 6, 12}}});
  std::vector<Constraint> cs = {Constraint::Sum("pop", 25, kNoUpperBound)};
  auto sol = SolveEmp(areas, cs);
  ASSERT_TRUE(sol.ok()) << sol.status().ToString();
  EXPECT_GE(sol->p(), 2);
  ValidateSolution(areas, cs, *sol);
}

TEST(FactSolverTest, InfeasibleInstanceReturnsInfeasible) {
  AreaSet areas = test::PathAreaSet({1, 2, 3});
  auto sol = SolveEmp(areas, {Constraint::Sum("s", 1000, kNoUpperBound)});
  ASSERT_FALSE(sol.ok());
  EXPECT_EQ(sol.status().code(), StatusCode::kInfeasible);
}

TEST(FactSolverTest, UnknownAttributeRejected) {
  AreaSet areas = test::PathAreaSet({1, 2, 3});
  auto sol = SolveEmp(areas, {Constraint::Sum("ghost", 1, kNoUpperBound)});
  ASSERT_FALSE(sol.ok());
  EXPECT_EQ(sol.status().code(), StatusCode::kNotFound);
}

TEST(FactSolverTest, FilterDisabledRejectsInvalidAreas) {
  AreaSet areas = test::PathAreaSet({1, 5, 6, 7});
  SolverOptions options;
  options.filter_invalid_areas = false;
  // MIN lower bound 4 makes area 0 invalid.
  auto sol = SolveEmp(areas, {Constraint::Min("s", 4, 6)}, options);
  ASSERT_FALSE(sol.ok());
  EXPECT_EQ(sol.status().code(), StatusCode::kInfeasible);
}

TEST(FactSolverTest, InvalidAreasLandInU0) {
  AreaSet areas = test::PathAreaSet({1, 5, 6, 7, 20});
  // MIN filters s<4; MAX filters s>8.
  std::vector<Constraint> cs = {Constraint::Min("s", 4, 6),
                                Constraint::Max("s", 5, 8)};
  auto sol = SolveEmp(areas, cs);
  ASSERT_TRUE(sol.ok()) << sol.status().ToString();
  // Areas 0 (s=1) and 4 (s=20) must be unassigned.
  EXPECT_EQ(sol->region_of[0], -1);
  EXPECT_EQ(sol->region_of[4], -1);
  ValidateSolution(areas, cs, *sol);
}

TEST(FactSolverTest, MultiConstraintQueryAllFamilies) {
  AreaSet areas = test::MakeAreaSet(
      test::GridGraph(6, 6),
      {{"pop", {3, 8, 5, 2, 9, 4, 7, 3, 6, 8, 2, 5, 9, 4, 7, 3, 6, 8,
                2, 5, 9, 4, 7, 3, 6, 8, 2, 5, 9, 4, 7, 3, 6, 8, 2, 5}},
       {"emp", {5, 4, 6, 5, 4, 6, 5, 4, 6, 5, 4, 6, 5, 4, 6, 5, 4, 6,
                5, 4, 6, 5, 4, 6, 5, 4, 6, 5, 4, 6, 5, 4, 6, 5, 4, 6}}});
  std::vector<Constraint> cs = {
      Constraint::Min("pop", 2, 5),
      Constraint::Avg("emp", 4.5, 5.5),
      Constraint::Sum("pop", 15, kNoUpperBound),
      Constraint::Count(2, 12),
  };
  auto sol = SolveEmp(areas, cs);
  ASSERT_TRUE(sol.ok()) << sol.status().ToString();
  EXPECT_GE(sol->p(), 1);
  ValidateSolution(areas, cs, *sol);
}

TEST(FactSolverTest, LocalSearchNeverWorsensHeterogeneity) {
  AreaSet areas = test::MakeAreaSet(
      test::GridGraph(5, 5),
      {{"pop", {12, 7, 9, 14, 6, 8, 11, 5, 13, 9, 10, 7, 12,
                6, 9, 11, 8, 14, 5, 10, 7, 13, 9, 6, 12}}});
  auto sol = SolveEmp(areas, {Constraint::Sum("pop", 30, kNoUpperBound)});
  ASSERT_TRUE(sol.ok());
  EXPECT_LE(sol->heterogeneity, sol->heterogeneity_before_local_search + 1e-9);
  EXPECT_GE(sol->HeterogeneityImprovement(), 0.0);
}

TEST(FactSolverTest, DisablingLocalSearchSkipsTabu) {
  AreaSet areas = test::MakeAreaSet(
      test::GridGraph(4, 4), {{"pop", {12, 7, 9, 14, 6, 8, 11, 5, 13, 9,
                                       10, 7, 12, 6, 9, 11}}});
  SolverOptions options;
  options.run_local_search = false;
  auto sol =
      SolveEmp(areas, {Constraint::Sum("pop", 25, kNoUpperBound)}, options);
  ASSERT_TRUE(sol.ok());
  EXPECT_EQ(sol->tabu_result.moves_applied, 0);
  EXPECT_DOUBLE_EQ(sol->heterogeneity,
                   sol->heterogeneity_before_local_search);
}

TEST(FactSolverTest, DeterministicForFixedSeed) {
  AreaSet areas = test::MakeAreaSet(
      test::GridGraph(5, 5),
      {{"pop", {12, 7, 9, 14, 6, 8, 11, 5, 13, 9, 10, 7, 12,
                6, 9, 11, 8, 14, 5, 10, 7, 13, 9, 6, 12}}});
  SolverOptions options;
  options.seed = 7;
  auto a = SolveEmp(areas, {Constraint::Sum("pop", 25, kNoUpperBound)},
                    options);
  auto b = SolveEmp(areas, {Constraint::Sum("pop", 25, kNoUpperBound)},
                    options);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->p(), b->p());
  EXPECT_EQ(a->region_of, b->region_of);
  EXPECT_DOUBLE_EQ(a->heterogeneity, b->heterogeneity);
}

TEST(FactSolverTest, MultipleConnectedComponentsSupported) {
  // Two disjoint 0-1-2 / 3-4-5 paths; regions never span components.
  auto graph =
      ContiguityGraph::FromEdges(6, {{0, 1}, {1, 2}, {3, 4}, {4, 5}});
  AreaSet areas = test::MakeAreaSet(std::move(graph).value(),
                                    {{"pop", {5, 6, 7, 5, 6, 7}}});
  std::vector<Constraint> cs = {Constraint::Sum("pop", 10, kNoUpperBound)};
  auto sol = SolveEmp(areas, cs);
  ASSERT_TRUE(sol.ok());
  EXPECT_GE(sol->p(), 2);
  ValidateSolution(areas, cs, *sol);
  for (const auto& region : sol->regions) {
    bool first_comp = region.front() <= 2;
    for (int32_t a : region) {
      EXPECT_EQ(a <= 2, first_comp) << "region spans components";
    }
  }
}

TEST(FactSolverTest, AvgOnlyQueryMayLeaveAreasUnassigned) {
  // Tight AVG range reachable only by a few pairings.
  AreaSet areas = test::PathAreaSet({1, 1, 1, 1, 100, 1, 1, 1, 1});
  std::vector<Constraint> cs = {Constraint::Avg("s", 45, 55)};
  auto sol = SolveEmp(areas, cs);
  ASSERT_TRUE(sol.ok());
  ValidateSolution(areas, cs, *sol);
  EXPECT_GT(sol->num_unassigned(), 0);
}

TEST(FactSolverTest, MoreConstraintsNeverIncreaseP) {
  AreaSet areas = test::MakeAreaSet(
      test::GridGraph(6, 6),
      {{"pop", {3, 8, 5, 2, 9, 4, 7, 3, 6, 8, 2, 5, 9, 4, 7, 3, 6, 8,
                2, 5, 9, 4, 7, 3, 6, 8, 2, 5, 9, 4, 7, 3, 6, 8, 2, 5}}});
  auto single = SolveEmp(areas, {Constraint::Min("pop", 2, 5)});
  auto combo = SolveEmp(areas, {Constraint::Min("pop", 2, 5),
                                Constraint::Sum("pop", 20, kNoUpperBound)});
  ASSERT_TRUE(single.ok());
  ASSERT_TRUE(combo.ok());
  EXPECT_LE(combo->p(), single->p());
}

TEST(FactSolverTest, ParallelConstructionMatchesSequential) {
  AreaSet areas = test::MakeAreaSet(
      test::GridGraph(6, 6),
      {{"pop", {3, 8, 5, 2, 9, 4, 7, 3, 6, 8, 2, 5, 9, 4, 7, 3, 6, 8,
                2, 5, 9, 4, 7, 3, 6, 8, 2, 5, 9, 4, 7, 3, 6, 8, 2, 5}}});
  std::vector<Constraint> cs = {Constraint::Sum("pop", 20, kNoUpperBound),
                                Constraint::Min("pop", 2, 6)};
  SolverOptions sequential;
  sequential.construction_iterations = 4;
  SolverOptions parallel = sequential;
  parallel.construction_threads = 4;
  auto a = SolveEmp(areas, cs, sequential);
  auto b = SolveEmp(areas, cs, parallel);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  // Thread count must not change the result (deterministic selection).
  EXPECT_EQ(a->p(), b->p());
  EXPECT_EQ(a->region_of, b->region_of);
}

TEST(FactSolverTest, SummaryMentionsKeyNumbers) {
  AreaSet areas = test::PathAreaSet({5, 6, 7});
  auto sol = SolveEmp(areas, {Constraint::Sum("s", 5, kNoUpperBound)});
  ASSERT_TRUE(sol.ok());
  std::string summary = sol->Summary();
  EXPECT_NE(summary.find("p="), std::string::npos);
  EXPECT_NE(summary.find("unassigned="), std::string::npos);
}

// ---- Options validation (satellite: reject bad options up front). -------

TEST(FactSolverOptionsTest, BadOptionsNameTheField) {
  AreaSet areas = test::PathAreaSet({5, 6, 7});
  std::vector<Constraint> cs = {Constraint::Sum("s", 5, kNoUpperBound)};
  struct Case {
    void (*corrupt)(SolverOptions*);
    const char* field;
  };
  const Case cases[] = {
      {[](SolverOptions* o) { o->construction_iterations = 0; },
       "construction_iterations"},
      {[](SolverOptions* o) { o->construction_retries = -1; },
       "construction_retries"},
      {[](SolverOptions* o) { o->construction_threads = 0; },
       "construction_threads"},
      {[](SolverOptions* o) { o->avg_merge_limit = -2; }, "avg_merge_limit"},
      {[](SolverOptions* o) { o->tabu_tenure = -1; }, "tabu_tenure"},
      {[](SolverOptions* o) { o->tabu_max_no_improve = -2; },
       "tabu_max_no_improve"},
      {[](SolverOptions* o) { o->tabu_max_iterations = -2; },
       "tabu_max_iterations"},
      {[](SolverOptions* o) { o->time_budget_ms = -2; }, "time_budget_ms"},
      {[](SolverOptions* o) { o->max_evaluations = -2; }, "max_evaluations"},
  };
  for (const Case& c : cases) {
    SolverOptions options;
    c.corrupt(&options);
    auto sol = SolveEmp(areas, cs, options);
    ASSERT_FALSE(sol.ok()) << c.field;
    EXPECT_EQ(sol.status().code(), StatusCode::kInvalidArgument) << c.field;
    EXPECT_NE(sol.status().message().find(c.field), std::string::npos)
        << "message should name '" << c.field
        << "': " << sol.status().ToString();
  }
}

// ---- Supervision / degradation (tentpole). ------------------------------

RunContext FaultAt(std::string phase, int64_t index) {
  RunContext ctx;
  ctx.fault_hook = [phase = std::move(phase), index](
                       const SupervisionCheckpoint& cp)
      -> std::optional<TerminationReason> {
    if (cp.phase == phase && cp.index >= index) {
      return TerminationReason::kFaultInjected;
    }
    return std::nullopt;
  };
  return ctx;
}

TEST(FactSolverSupervisionTest, PreCancelledRunReturnsDegradedEmpty) {
  AreaSet areas = test::MakeAreaSet(
      test::GridGraph(4, 4),
      {{"pop", {5, 5, 5, 5, 5, 5, 5, 5, 5, 5, 5, 5, 5, 5, 5, 5}}});
  std::vector<Constraint> cs = {Constraint::Sum("pop", 10, kNoUpperBound)};
  RunContext ctx;
  ctx.cancel.Cancel();
  auto sol = SolveEmp(areas, cs, SolverOptions{}, &ctx);
  ASSERT_TRUE(sol.ok()) << sol.status().ToString();
  EXPECT_EQ(sol->termination_reason, TerminationReason::kCancelled);
  EXPECT_EQ(sol->p(), 0);
  EXPECT_EQ(sol->num_unassigned(), areas.num_areas());
}

TEST(FactSolverSupervisionTest, FaultInFeasibilityDegradesToEmpty) {
  AreaSet areas = test::MakeAreaSet(
      test::GridGraph(4, 4),
      {{"pop", {5, 5, 5, 5, 5, 5, 5, 5, 5, 5, 5, 5, 5, 5, 5, 5}}});
  std::vector<Constraint> cs = {Constraint::Sum("pop", 10, kNoUpperBound)};
  RunContext ctx = FaultAt("feasibility", 3);
  auto sol = SolveEmp(areas, cs, SolverOptions{}, &ctx);
  ASSERT_TRUE(sol.ok()) << sol.status().ToString();
  EXPECT_EQ(sol->termination_reason, TerminationReason::kFaultInjected);
  EXPECT_EQ(sol->p(), 0);
  ValidateSolution(areas, cs, *sol);
}

TEST(FactSolverSupervisionTest, FaultInConstructionKeepsFeasibleBestSoFar) {
  AreaSet areas = test::MakeAreaSet(
      test::GridGraph(6, 6),
      {{"pop", std::vector<double>(36, 5.0)}});
  std::vector<Constraint> cs = {Constraint::Sum("pop", 10, kNoUpperBound)};
  SolverOptions options;
  options.construction_iterations = 4;
  options.construction_threads = 1;
  RunContext ctx = FaultAt("construction", 10);
  auto sol = SolveEmp(areas, cs, options, &ctx);
  ASSERT_TRUE(sol.ok()) << sol.status().ToString();
  EXPECT_EQ(sol->termination_reason, TerminationReason::kFaultInjected);
  EXPECT_LT(sol->completed_construction_iterations, 4);
  // Whatever was built when the fault hit must still be a valid partial
  // regionalization: disjoint, contiguous, constraint-satisfying.
  ValidateSolution(areas, cs, *sol);
}

TEST(FactSolverSupervisionTest, FaultInTabuKeepsConstructionResult) {
  AreaSet areas = test::MakeAreaSet(
      test::GridGraph(6, 6),
      {{"pop", std::vector<double>(36, 5.0)}});
  std::vector<Constraint> cs = {Constraint::Sum("pop", 10, kNoUpperBound)};
  RunContext ctx = FaultAt("tabu", 0);
  auto sol = SolveEmp(areas, cs, SolverOptions{}, &ctx);
  ASSERT_TRUE(sol.ok()) << sol.status().ToString();
  EXPECT_EQ(sol->termination_reason, TerminationReason::kFaultInjected);
  EXPECT_GT(sol->p(), 0) << "construction completed before the tabu fault";
  ValidateSolution(areas, cs, *sol);
}

TEST(FactSolverSupervisionTest, EvaluationBudgetExhaustionIsReported) {
  AreaSet areas = test::MakeAreaSet(
      test::GridGraph(6, 6),
      {{"pop", std::vector<double>(36, 5.0)}});
  std::vector<Constraint> cs = {Constraint::Sum("pop", 10, kNoUpperBound)};
  SolverOptions options;
  options.construction_iterations = 8;
  options.construction_threads = 1;
  options.max_evaluations = 200;  // Enough for feasibility, not the rest.
  auto sol = SolveEmp(areas, cs, options);
  ASSERT_TRUE(sol.ok()) << sol.status().ToString();
  EXPECT_EQ(sol->termination_reason, TerminationReason::kBudgetExhausted);
  ValidateSolution(areas, cs, *sol);
}

TEST(FactSolverSupervisionTest, InterruptionIsNeverRetried) {
  // A fault at construction checkpoint 0 trips every attempt immediately;
  // with retries enabled the solver must still do exactly one attempt per
  // iteration (retries target errors/empty results, not interruptions) and
  // return the degraded solution promptly.
  AreaSet areas = test::MakeAreaSet(
      test::GridGraph(5, 5),
      {{"pop", std::vector<double>(25, 5.0)}});
  std::vector<Constraint> cs = {Constraint::Sum("pop", 10, kNoUpperBound)};
  SolverOptions options;
  options.construction_iterations = 2;
  options.construction_retries = 5;
  options.construction_threads = 1;
  RunContext ctx = FaultAt("construction", 0);
  auto sol = SolveEmp(areas, cs, options, &ctx);
  ASSERT_TRUE(sol.ok()) << sol.status().ToString();
  EXPECT_EQ(sol->termination_reason, TerminationReason::kFaultInjected);
  EXPECT_EQ(sol->completed_construction_iterations, 0);
  ValidateSolution(areas, cs, *sol);
}

TEST(FactSolverSupervisionTest, DeterministicUnderFaultInjection) {
  AreaSet areas = test::MakeAreaSet(
      test::GridGraph(6, 6),
      {{"pop", std::vector<double>(36, 5.0)}});
  std::vector<Constraint> cs = {Constraint::Sum("pop", 10, kNoUpperBound)};
  SolverOptions options;
  options.construction_iterations = 4;
  options.construction_threads = 1;
  RunContext ctx_a = FaultAt("construction", 25);
  auto a = SolveEmp(areas, cs, options, &ctx_a);
  RunContext ctx_b = FaultAt("construction", 25);
  auto b = SolveEmp(areas, cs, options, &ctx_b);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->p(), b->p());
  EXPECT_EQ(a->region_of, b->region_of);
  EXPECT_EQ(a->termination_reason, b->termination_reason);
}

// Acceptance criterion: a tight wall-clock budget on a large instance
// still returns kOk with a feasible, contiguous best-so-far.
TEST(FactSolverSupervisionTest, FiftyMsBudgetOnLargeInstanceDegrades) {
  auto areas = synthetic::MakeDefaultDataset("budget-demo", 3000, 4242);
  ASSERT_TRUE(areas.ok()) << areas.status().ToString();
  std::vector<Constraint> cs = {
      Constraint::Sum("TOTALPOP", 20000, kNoUpperBound)};
  SolverOptions options;
  // Enough requested work that 50ms cannot possibly cover it.
  options.construction_iterations = 500;
  options.tabu_max_iterations = 1000000;
  options.time_budget_ms = 50;
  auto sol = SolveEmp(*areas, cs, options);
  ASSERT_TRUE(sol.ok()) << sol.status().ToString();
  EXPECT_EQ(sol->termination_reason, TerminationReason::kDeadlineExceeded);
  EXPECT_LT(sol->completed_construction_iterations, 500);
  ValidateSolution(*areas, cs, *sol);
}

TEST(FactSolverSupervisionTest, ReportCarriesTerminationReason) {
  AreaSet areas = test::PathAreaSet({5, 6, 7});
  std::vector<Constraint> cs = {Constraint::Sum("s", 5, kNoUpperBound)};
  RunContext ctx;
  ctx.cancel.Cancel();
  auto sol = SolveEmp(areas, cs, SolverOptions{}, &ctx);
  ASSERT_TRUE(sol.ok());
  std::string summary = sol->Summary();
  EXPECT_NE(summary.find("cancelled"), std::string::npos) << summary;
  EXPECT_NE(summary.find("best-effort"), std::string::npos) << summary;
}

}  // namespace
}  // namespace emp
