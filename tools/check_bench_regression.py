#!/usr/bin/env python3
"""CI perf ratchet: compare fresh BENCH_*.json tables against committed
baselines and fail on large regressions.

Usage:
    tools/check_bench_regression.py \
        --baseline-dir bench/baselines --current-dir bench-json

Policy (tuned for shared CI runners):
  * A metric regressing by more than --fail-threshold (default 25%) is a
    FAILURE; more than --warn-threshold (default 10%) is a WARNING.
  * Ratio metrics (speedups, layout ratios) hard-fail the job: they divide
    out machine speed, so a 25% drop is a real change, not runner noise.
  * Absolute metrics (microseconds, milliseconds) only warn by default —
    set EMP_RATCHET_STRICT=1 to make them fail too (useful on dedicated
    hardware; the default keeps shared runners green).
  * A "-" cell, a missing row key, or a missing file is a MISSING
    measurement: skipped with a warning, never compared against zero.
    Smoke runs legitimately emit "-" for the large catalog entries.

The delta table goes to stdout and, when $GITHUB_STEP_SUMMARY is set, is
appended there as markdown. Baselines are refreshed with
tools/update_bench_baselines.sh (see README "Running in CI").
"""

import argparse
import json
import os
import sys

# Per-table comparison plan. `key` selects the row-identifying column;
# each metric is (column, direction, kind) where direction is "lower" or
# "higher" (which way is better) and kind is "ratio" or "absolute".
TABLE_METRICS = {
    "tabu": {
        "key": "areas",
        "metrics": [
            ("incremental_us", "lower", "absolute"),
            ("full_us", "lower", "absolute"),
            ("speedup", "higher", "ratio"),
        ],
    },
    "region_stats": {
        "key": "areas",
        "metrics": [
            ("soa_ns", "lower", "absolute"),
            ("legacy/soa", "higher", "ratio"),
        ],
    },
    "construction": {
        "key": "areas",
        "metrics": [
            ("grow_ms", "lower", "absolute"),
            ("adjust_ms", "lower", "absolute"),
        ],
    },
    "portfolio": {
        "key": "threads",
        "metrics": [
            ("seconds", "lower", "absolute"),
            ("speedup", "higher", "ratio"),
        ],
    },
}


def parse_cell(cell):
    """Numeric value of a table cell, or None for missing ("-") cells.

    Bench cells mix numbers with annotations ("4.0x", "40.2%"); strip the
    suffix and parse what remains.
    """
    text = cell.strip()
    if text in ("", "-"):
        return None
    for suffix in ("x", "%"):
        if text.endswith(suffix):
            text = text[: -len(suffix)]
    try:
        return float(text)
    except ValueError:
        return None


def load_table(path):
    """{row_key: {column: cell}} from one BENCH_*.json, or None."""
    try:
        with open(path, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, ValueError):
        return None
    columns = doc.get("columns", [])
    rows = {}
    for row in doc.get("rows", []):
        cells = dict(zip(columns, row))
        if columns and columns[0] in cells:
            rows[row[0]] = cells
    return {"columns": columns, "rows": rows}


def compare(args):
    results = []  # (table, row, metric, kind, base, cur, delta_pct, level)
    warnings = []
    failures = []
    strict = os.environ.get("EMP_RATCHET_STRICT") == "1"

    for table_id, plan in sorted(TABLE_METRICS.items()):
        name = f"BENCH_{table_id}.json"
        base_path = os.path.join(args.baseline_dir, name)
        cur_path = os.path.join(args.current_dir, name)
        base = load_table(base_path)
        cur = load_table(cur_path)
        if base is None:
            warnings.append(f"{name}: no committed baseline — skipped")
            continue
        if cur is None:
            warnings.append(f"{name}: no current measurement — skipped")
            continue
        for row_key, base_cells in base["rows"].items():
            cur_cells = cur["rows"].get(row_key)
            if cur_cells is None:
                warnings.append(
                    f"{name}: row {plan['key']}={row_key} missing from "
                    "current run — skipped")
                continue
            for metric, direction, kind in plan["metrics"]:
                base_v = parse_cell(base_cells.get(metric, "-"))
                cur_v = parse_cell(cur_cells.get(metric, "-"))
                if base_v is None or cur_v is None:
                    # "-" cells: the family was skipped (EMP_BENCH_SMOKE)
                    # in this run or when the baseline was captured.
                    warnings.append(
                        f"{name}: {plan['key']}={row_key} {metric} not "
                        "measured — skipped")
                    continue
                if base_v <= 0:
                    warnings.append(
                        f"{name}: {plan['key']}={row_key} {metric} has "
                        f"non-positive baseline {base_v} — skipped")
                    continue
                if direction == "lower":
                    delta = cur_v / base_v - 1.0
                else:
                    delta = base_v / cur_v - 1.0 if cur_v > 0 else float("inf")
                level = "ok"
                if delta > args.fail_threshold:
                    if kind == "ratio" or strict:
                        level = "FAIL"
                        failures.append(
                            f"{name}: {plan['key']}={row_key} {metric} "
                            f"regressed {delta * 100.0:+.1f}% "
                            f"({base_v:g} -> {cur_v:g})")
                    else:
                        level = "warn"
                        warnings.append(
                            f"{name}: {plan['key']}={row_key} {metric} "
                            f"regressed {delta * 100.0:+.1f}% (absolute "
                            "metric: warn-only; EMP_RATCHET_STRICT=1 to "
                            "fail)")
                elif delta > args.warn_threshold:
                    level = "warn"
                    warnings.append(
                        f"{name}: {plan['key']}={row_key} {metric} "
                        f"regressed {delta * 100.0:+.1f}%")
                results.append((table_id, row_key, metric, kind, base_v,
                                cur_v, delta, level))
    return results, warnings, failures


def render(results, warnings, failures):
    header = ["table", "row", "metric", "kind", "baseline", "current",
              "delta", "status"]
    lines = []
    rows = [header] + [
        [t, r, m, k, f"{b:g}", f"{c:g}", f"{d * 100.0:+.1f}%", lvl]
        for t, r, m, k, b, c, d, lvl in results
    ]
    widths = [max(len(row[i]) for row in rows) for i in range(len(header))]
    for i, row in enumerate(rows):
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
        if i == 0:
            lines.append("  ".join("-" * w for w in widths))
    text = "\n".join(lines)

    md = ["### Perf ratchet: bench vs committed baselines", "",
          "| " + " | ".join(header) + " |",
          "|" + "|".join("---" for _ in header) + "|"]
    for row in rows[1:]:
        md.append("| " + " | ".join(row) + " |")
    if warnings:
        md.append("")
        md.append("**Warnings**")
        md.extend(f"- {w}" for w in warnings)
    if failures:
        md.append("")
        md.append("**Failures**")
        md.extend(f"- {f}" for f in failures)
    return text, "\n".join(md) + "\n"


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline-dir", default="bench/baselines")
    parser.add_argument("--current-dir", default="bench-json")
    parser.add_argument("--fail-threshold", type=float, default=0.25)
    parser.add_argument("--warn-threshold", type=float, default=0.10)
    args = parser.parse_args()

    results, warnings, failures = compare(args)
    text, md = render(results, warnings, failures)
    print(text)
    for w in warnings:
        print(f"warning: {w}", file=sys.stderr)
    for f in failures:
        print(f"FAILURE: {f}", file=sys.stderr)

    summary_path = os.environ.get("GITHUB_STEP_SUMMARY")
    if summary_path:
        with open(summary_path, "a", encoding="utf-8") as f:
            f.write(md)

    if failures:
        return 1
    if not results:
        # Nothing compared at all is a configuration problem worth seeing.
        print("warning: no metrics compared", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
