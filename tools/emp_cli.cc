// emp_cli — command-line regionalizer over the emp library.
//
// Subcommands:
//   synth        synthesize a census-like map and write it as loader CSV
//   info         describe a map (areas, adjacency, attributes); export GAL
//   feasibility  run FaCT's feasibility phase and print the diagnostics
//   solve        regionalize with FaCT (enriched query) or MP/SKATER
//   serve        long-lived solve service: job API over the HTTP plane
//   pack         serialize a map to the compact mmap-able .emp format
//   inspect      describe a compact .emp file from its header
//   validate     audit an assignment CSV against a query
//
// Examples:
//   emp_cli synth --dataset 2k --out tracts.csv
//   emp_cli solve --input tracts.csv
//       --query "MIN(POP16UP) <= 3000; SUM(TOTALPOP) >= 20k"
//       --out assignment.csv --geojson regions.geojson
//   emp_cli solve --input tracts.csv --solver maxp --attribute TOTALPOP
//       --threshold 20000
//   emp_cli validate --input tracts.csv --query "SUM(TOTALPOP) >= 20k"
//       --assignment assignment.csv

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <csignal>
#include <cstdio>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "baseline/maxp_regions.h"
#include "baseline/skater.h"
#include "common/csv.h"
#include "constraints/query_parser.h"
#include "core/fact_solver.h"
#include "core/solver.h"
#include "core/feasibility.h"
#include "core/portfolio.h"
#include "core/metrics.h"
#include "core/validate.h"
#include "core/explore.h"
#include "core/report.h"
#include "data/compact/loader.h"
#include "data/compact/writer.h"
#include "data/geojson.h"
#include "data/loader.h"
#include "data/synthetic/dataset_catalog.h"
#include "graph/components.h"
#include "graph/gal.h"
#include "obs/curve.h"
#include "obs/export.h"
#include "obs/http_server.h"
#include "obs/journal.h"
#include "obs/metrics.h"
#include "obs/profiler.h"
#include "obs/progress.h"
#include "obs/trace.h"
#include "render/svg.h"
#include "service/solve_service.h"

namespace {

/// Minimal --flag=value / --flag value parser.
class Args {
 public:
  Args(int argc, char** argv) {
    for (int i = 2; i < argc; ++i) {
      std::string arg = argv[i];
      if (arg.rfind("--", 0) != 0) {
        error_ = "unexpected positional argument '" + arg + "'";
        return;
      }
      arg = arg.substr(2);
      size_t eq = arg.find('=');
      if (eq != std::string::npos) {
        values_[arg.substr(0, eq)] = arg.substr(eq + 1);
      } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
        values_[arg] = argv[++i];
      } else {
        values_[arg] = "true";  // boolean flag
      }
    }
  }

  const std::string& error() const { return error_; }

  std::string Get(const std::string& key,
                  const std::string& fallback = "") const {
    auto it = values_.find(key);
    return it == values_.end() ? fallback : it->second;
  }

  bool Has(const std::string& key) const { return values_.count(key) != 0; }

  double GetDouble(const std::string& key, double fallback) const {
    auto it = values_.find(key);
    return it == values_.end() ? fallback : std::atof(it->second.c_str());
  }

  int64_t GetInt(const std::string& key, int64_t fallback) const {
    auto it = values_.find(key);
    return it == values_.end() ? fallback : std::atoll(it->second.c_str());
  }

 private:
  std::map<std::string, std::string> values_;
  std::string error_;
};

int Fail(const std::string& message) {
  std::fprintf(stderr, "error: %s\n", message.c_str());
  return 1;
}

/// Cooperative Ctrl-C for `solve`: the first SIGINT flips the solver's
/// cancellation token (an atomic store — async-signal-safe) so the solve
/// unwinds at its next checkpoint and prints the best-so-far report; the
/// handler then re-arms SIG_DFL so a second Ctrl-C kills immediately.
emp::CancellationToken* g_solve_cancel = nullptr;

void HandleSigint(int) {
  if (g_solve_cancel != nullptr) g_solve_cancel->Cancel();
  std::signal(SIGINT, SIG_DFL);
}

/// Background thread calling `flush` every `period_ms` until stopped.
/// Backs --metrics-flush-ms: the flush callback writes metrics / journal
/// files atomically (tmp + rename), so a `watch`/poll loop on the files
/// never observes a torn write.
class PeriodicFlusher {
 public:
  PeriodicFlusher(int64_t period_ms, std::function<void()> flush)
      : period_ms_(period_ms < 1 ? 1 : period_ms),
        flush_(std::move(flush)),
        thread_([this] { Run(); }) {}

  ~PeriodicFlusher() { Stop(); }

  void Stop() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (stopped_) return;
      stopped_ = true;
    }
    cv_.notify_all();
    thread_.join();
  }

 private:
  void Run() {
    std::unique_lock<std::mutex> lock(mu_);
    while (!stopped_) {
      cv_.wait_for(lock, std::chrono::milliseconds(period_ms_));
      if (stopped_) break;
      lock.unlock();
      flush_();
      lock.lock();
    }
  }

  const int64_t period_ms_;
  const std::function<void()> flush_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stopped_ = false;
  std::thread thread_;
};

int Usage() {
  std::fprintf(
      stderr,
      "usage: emp_cli <command> [--flag value ...]\n"
      "  synth       --out FILE [--dataset NAME | --areas N] [--seed S]\n"
      "              [--components K] [--scale F]\n"
      "  info        --input FILE [--gal FILE]\n"
      "  feasibility --input FILE --query Q\n"
      "  solve       --input FILE (--query Q | --solver maxp|skater\n"
      "              --attribute A --threshold T) [--out FILE]\n"
      "              [--geojson FILE] [--svg FILE] [--json FILE]\n"
      "              [--iterations N] [--threads N] [--seed S] [--no-tabu]\n"
      "              [--portfolio-replicas N] [--portfolio-threads N]\n"
      "              [--portfolio-target-p P] [--no-share-incumbent]\n"
      "              [--time-budget-ms MS] [--max-evals N]\n"
      "              [--metrics-out FILE(.json|.prom)] [--trace-out FILE]\n"
      "              [--serve-port P (0 = ephemeral)] [--journal-out FILE]\n"
      "              [--metrics-flush-ms MS] [--curve-out FILE]\n"
      "              [--profile-hz HZ] [--profile-out FILE]\n"
      "  serve       [--port P (default 8080, 0 = ephemeral)]\n"
      "              [--workers N] [--queue-capacity N]\n"
      "              [--journal-dir DIR] [--profile-hz HZ]\n"
      "  pack        --out FILE (--input FILE | --dataset NAME [--scale F])\n"
      "              [--no-geometry]\n"
      "  inspect     --input FILE [--verify]\n"
      "  validate    --input FILE --query Q --assignment FILE\n"
      "  render      --input FILE [--assignment FILE] [--out FILE]\n"
      "              [--width W] [--labels]\n"
      "  explore     --input FILE --query Q [--min-gain F]\n");
  return 2;
}

emp::Result<emp::AreaSet> LoadInput(const Args& args) {
  std::string path = args.Get("input");
  if (path.empty()) {
    return emp::Status::InvalidArgument("--input is required");
  }
  emp::LoaderOptions options;
  if (args.Has("dissimilarity")) {
    options.dissimilarity_attribute = args.Get("dissimilarity");
  } else {
    options.dissimilarity_attribute = "";  // first column
  }
  // Dispatches on content: compact .emp images mmap in, CSV parses.
  return emp::LoadAreaSetAuto(path, options);
}

int CmdPack(const Args& args) {
  const std::string out = args.Get("out");
  if (out.empty()) return Fail("pack: --out is required");

  emp::Result<emp::AreaSet> areas = [&]() -> emp::Result<emp::AreaSet> {
    if (args.Has("input")) return LoadInput(args);
    return emp::synthetic::MakeCatalogDataset(args.Get("dataset", "2k"),
                                              args.GetDouble("scale", 1.0));
  }();
  if (!areas.ok()) return Fail(areas.status().ToString());

  emp::compact::PackOptions options;
  options.strip_geometry = args.Has("no-geometry");
  emp::Status st = emp::compact::WriteCompactFile(*areas, out, options);
  if (!st.ok()) return Fail(st.ToString());

  auto info = emp::compact::InspectCompactFile(out);
  if (!info.ok()) return Fail(info.status().ToString());
  std::printf("wrote %s: %lld areas, %lld edges, %llu bytes, digest %s\n",
              out.c_str(), static_cast<long long>(info->num_nodes),
              static_cast<long long>(info->num_edges),
              static_cast<unsigned long long>(info->file_bytes),
              emp::obs::DigestHex(info->digest).c_str());
  return 0;
}

int CmdInspect(const Args& args) {
  const std::string path = args.Get("input");
  if (path.empty()) return Fail("inspect: --input is required");

  auto info = emp::compact::InspectCompactFile(path);
  if (!info.ok()) return Fail(info.status().ToString());
  std::printf("name: %s\n", info->name.c_str());
  std::printf("areas: %lld\n", static_cast<long long>(info->num_nodes));
  std::printf("edges: %lld\n", static_cast<long long>(info->num_edges));
  std::printf("geometry: %s\n", info->has_geometry ? "yes" : "no");
  std::printf("file bytes: %llu\n",
              static_cast<unsigned long long>(info->file_bytes));
  std::printf("digest: %s\n", emp::obs::DigestHex(info->digest).c_str());
  std::printf("dissimilarity attribute: %s\n",
              info->dissimilarity_attribute.c_str());
  std::printf("columns:\n");
  for (size_t i = 0; i < info->column_names.size(); ++i) {
    const char* enc = i < info->column_encodings.size()
                          ? info->column_encodings[i].c_str()
                          : "?";
    std::printf("  %-16s %s\n", info->column_names[i].c_str(), enc);
  }
  if (args.Has("verify")) {
    emp::compact::LoadOptions options;
    options.verify_digest = true;
    auto areas = emp::compact::LoadCompactAreaSet(path, options);
    if (!areas.ok()) return Fail(areas.status().ToString());
    std::printf("verify: digest matches decoded instance\n");
  }
  return 0;
}

int CmdSynth(const Args& args) {
  std::string out = args.Get("out");
  if (out.empty()) return Fail("synth: --out is required");

  emp::Result<emp::AreaSet> areas = [&]() -> emp::Result<emp::AreaSet> {
    if (args.Has("areas")) {
      return emp::synthetic::MakeDefaultDataset(
          "custom", static_cast<int32_t>(args.GetInt("areas", 1000)),
          static_cast<uint64_t>(args.GetInt("seed", 1)),
          static_cast<int32_t>(args.GetInt("components", 1)));
    }
    return emp::synthetic::MakeCatalogDataset(args.Get("dataset", "2k"),
                                              args.GetDouble("scale", 1.0));
  }();
  if (!areas.ok()) return Fail(areas.status().ToString());

  auto csv = emp::AreaSetToCsvText(*areas);
  if (!csv.ok()) return Fail(csv.status().ToString());
  emp::Status st = emp::WriteFile(out, *csv);
  if (!st.ok()) return Fail(st.ToString());
  std::printf("wrote %s: %d areas, %lld edges\n", out.c_str(),
              areas->num_areas(),
              static_cast<long long>(areas->graph().num_edges()));
  return 0;
}

int CmdInfo(const Args& args) {
  auto areas = LoadInput(args);
  if (!areas.ok()) return Fail(areas.status().ToString());
  std::printf("name: %s\n", areas->name().c_str());
  std::printf("areas: %d\n", areas->num_areas());
  std::printf("edges: %lld (avg degree %.2f)\n",
              static_cast<long long>(areas->graph().num_edges()),
              areas->graph().AverageDegree());
  std::printf("components: %d\n",
              emp::ConnectedComponents(areas->graph()).count);
  std::printf("attributes:\n");
  for (const std::string& name : areas->attributes().column_names()) {
    auto stats = areas->attributes().Stats(name);
    if (stats.ok()) {
      std::printf("  %-16s min=%.1f mean=%.1f max=%.1f\n", name.c_str(),
                  stats->min, stats->mean, stats->max);
    }
  }
  std::printf("dissimilarity attribute: %s\n",
              areas->dissimilarity_attribute().c_str());
  if (args.Has("gal")) {
    emp::Status st = emp::WriteGalFile(args.Get("gal"), areas->graph());
    if (!st.ok()) return Fail(st.ToString());
    std::printf("wrote GAL weights: %s\n", args.Get("gal").c_str());
  }
  return 0;
}

int CmdFeasibility(const Args& args) {
  auto areas = LoadInput(args);
  if (!areas.ok()) return Fail(areas.status().ToString());
  auto constraints = emp::ParseConstraints(args.Get("query"));
  if (!constraints.ok()) return Fail(constraints.status().ToString());
  auto bound = emp::BoundConstraints::Create(&*areas, *constraints);
  if (!bound.ok()) return Fail(bound.status().ToString());
  auto report = emp::CheckFeasibility(*bound);
  if (!report.ok()) return Fail(report.status().ToString());

  std::printf("feasible: %s\n", report->feasible ? "yes" : "NO");
  std::printf("full partition possible: %s\n",
              report->full_partition_possible ? "yes" : "no");
  std::printf("valid areas: %lld / %d (%lld invalid)\n",
              static_cast<long long>(report->num_valid_areas),
              areas->num_areas(),
              static_cast<long long>(report->invalid_areas.size()));
  std::printf("seed areas: %lld\n",
              static_cast<long long>(report->num_seed_areas));
  for (const std::string& line : report->diagnostics) {
    std::printf("diagnostic: %s\n", line.c_str());
  }
  return report->feasible ? 0 : 3;
}

int CmdSolve(const Args& args) {
  auto areas = LoadInput(args);
  if (!areas.ok()) return Fail(areas.status().ToString());

  emp::SolverOptions options;
  options.construction_iterations =
      static_cast<int>(args.GetInt("iterations", 3));
  options.construction_threads = static_cast<int>(args.GetInt("threads", 1));
  options.seed = static_cast<uint64_t>(args.GetInt("seed", 42));
  options.run_local_search = !args.Has("no-tabu");
  options.portfolio_replicas =
      static_cast<int>(args.GetInt("portfolio-replicas", 1));
  options.portfolio_threads =
      static_cast<int>(args.GetInt("portfolio-threads", 1));
  options.portfolio_target_p =
      static_cast<int32_t>(args.GetInt("portfolio-target-p", -1));
  options.portfolio_share_incumbent = !args.Has("no-share-incumbent");
  options.time_budget_ms = args.GetInt("time-budget-ms", -1);
  options.max_evaluations = args.GetInt("max-evals", -1);

  // Supervision context: deadline/budget from the flags above, plus a
  // cancellation token wired to Ctrl-C for the duration of the solve.
  emp::RunContext ctx = emp::MakeRunContext(options);

  // Telemetry sinks, attached only when requested — the default solve
  // pays one null-pointer branch per instrumentation site.
  emp::obs::MetricRegistry metric_registry;
  emp::obs::TraceBuffer trace_buffer;
  emp::obs::ProgressBoard progress_board;
  emp::obs::RunJournal run_journal;
  emp::obs::AnytimeCurve anytime_curve;
  const bool serve = args.Has("serve-port");
  const bool profile = args.Has("profile-hz") || args.Has("profile-out");
  if (args.Has("metrics-out") || serve) ctx.metrics = &metric_registry;
  if (args.Has("trace-out")) ctx.trace = &trace_buffer;
  // The profiler is fed from the board's phase publishes, so profiling
  // needs the board attached even without --serve-port.
  if (serve || profile) ctx.progress_board = &progress_board;
  if (args.Has("journal-out")) ctx.journal = &run_journal;
  if (args.Has("curve-out")) ctx.curve = &anytime_curve;
  if (ctx.trace != nullptr && ctx.metrics != nullptr) {
    // Surface trace-buffer drops as emp_trace_dropped_events_total.
    trace_buffer.AttachDropMetrics(&metric_registry);
  }
  if (profile) {
    emp::Status st = emp::obs::PhaseProfiler::Start(
        static_cast<int>(args.GetInt("profile-hz", 97)));
    if (!st.ok()) return Fail(st.ToString());
  }

  // Live observability plane: HTTP endpoint over the registry + board.
  std::unique_ptr<emp::obs::HttpServer> http_server;
  if (serve) {
    emp::obs::HttpServer::Options server_options;
    server_options.port =
        static_cast<int>(args.GetInt("serve-port", 0));
    server_options.metrics = &metric_registry;
    server_options.progress = &progress_board;
    auto server = emp::obs::HttpServer::Start(server_options);
    if (!server.ok()) return Fail(server.status().ToString());
    http_server = std::move(server).value();
    std::printf("serving http on 127.0.0.1:%d "
                "(/healthz /metrics /metrics.json /progress /profile)\n",
                http_server->port());
    std::fflush(stdout);  // poll loops read this while the solve runs
  }

  // Periodic flusher: rewrites the metrics/journal files atomically every
  // --metrics-flush-ms while the solve runs, so pollers can tail them.
  std::unique_ptr<PeriodicFlusher> flusher;
  if (args.Has("metrics-flush-ms") &&
      (args.Has("metrics-out") || args.Has("journal-out"))) {
    const std::string metrics_path = args.Get("metrics-out");
    const bool metrics_prometheus =
        metrics_path.size() >= 5 &&
        (metrics_path.rfind(".prom") == metrics_path.size() - 5 ||
         metrics_path.rfind(".txt") == metrics_path.size() - 4);
    const std::string journal_path = args.Get("journal-out");
    flusher = std::make_unique<PeriodicFlusher>(
        args.GetInt("metrics-flush-ms", 1000), [=, &metric_registry,
                                                &run_journal] {
          if (!metrics_path.empty()) {
            emp::WriteFileAtomic(
                metrics_path,
                metrics_prometheus
                    ? emp::obs::MetricsToPrometheus(metric_registry)
                    : emp::obs::MetricsToJson(metric_registry));
          }
          if (!journal_path.empty()) run_journal.FlushTo(journal_path);
        });
  }

  g_solve_cancel = &ctx.cancel;
  std::signal(SIGINT, HandleSigint);

  // One spec, any algorithm: the registry picks the implementation by
  // name and validates the whole request (query syntax, attribute
  // binding, option domains) at Create time.
  emp::SolverSpec spec;
  spec.solver = args.Get("solver", "fact");
  spec.areas = &*areas;
  spec.query = args.Get("query");
  spec.attribute = args.Get("attribute");
  spec.threshold = args.GetDouble("threshold", -1);
  spec.options = options;
  if (spec.solver == "fact" && spec.query.empty()) {
    return Fail("solve: --query is required for --solver fact");
  }
  auto solver_or = emp::CreateSolver(spec);
  if (!solver_or.ok()) return Fail(solver_or.status().ToString());
  emp::Solver& solver_impl = **solver_or;

  emp::Result<emp::Solution> solution = solver_impl.Solve(ctx);
  // The portfolio replica stats survive on the concrete FaCT solver.
  emp::PortfolioStats portfolio_stats;
  if (auto* fact = dynamic_cast<emp::FactSolver*>(&solver_impl)) {
    portfolio_stats = fact->portfolio_stats();
  }
  std::signal(SIGINT, SIG_DFL);
  g_solve_cancel = nullptr;

  // Tear the plane down in reverse: flusher first (its last write must not
  // race the finals below), then the HTTP server. The profiler stops
  // before its table is exported so the dump is a settled snapshot.
  if (profile) emp::obs::PhaseProfiler::Stop();
  if (flusher != nullptr) flusher->Stop();
  if (http_server != nullptr) {
    http_server->Stop();
    std::printf("http server stopped after %lld requests\n",
                static_cast<long long>(http_server->requests_served()));
  }

  // Telemetry exports happen even for failed/interrupted solves — partial
  // metrics are exactly what you want when diagnosing one.
  if (args.Has("metrics-out")) {
    const std::string path = args.Get("metrics-out");
    const bool prometheus =
        path.size() >= 5 && (path.rfind(".prom") == path.size() - 5 ||
                             path.rfind(".txt") == path.size() - 4);
    const std::string text =
        prometheus ? emp::obs::MetricsToPrometheus(metric_registry)
                   : emp::obs::MetricsToJson(metric_registry);
    emp::Status st = emp::WriteFileAtomic(path, text);
    if (!st.ok()) return Fail(st.ToString());
    std::printf("wrote %s\n", path.c_str());
  }
  if (args.Has("journal-out")) {
    emp::Status st = run_journal.FlushTo(args.Get("journal-out"));
    if (!st.ok()) return Fail(st.ToString());
    std::printf("wrote %s (%lld records)\n", args.Get("journal-out").c_str(),
                static_cast<long long>(run_journal.size()));
  }
  if (args.Has("trace-out")) {
    emp::Status st = emp::WriteFile(args.Get("trace-out"),
                                    trace_buffer.ToJson());
    if (!st.ok()) return Fail(st.ToString());
    std::printf("wrote %s\n", args.Get("trace-out").c_str());
  }
  if (args.Has("curve-out")) {
    emp::Status st = emp::WriteFile(args.Get("curve-out"),
                                    anytime_curve.ToJson() + "\n");
    if (!st.ok()) return Fail(st.ToString());
    std::printf("wrote %s\n", args.Get("curve-out").c_str());
  }
  if (args.Has("profile-out")) {
    emp::Status st = emp::WriteFile(args.Get("profile-out"),
                                    emp::obs::PhaseProfiler::ToJson() + "\n");
    if (!st.ok()) return Fail(st.ToString());
    std::printf("wrote %s\n", args.Get("profile-out").c_str());
  }

  if (!solution.ok()) return Fail(solution.status().ToString());

  if (ctx.cancel.cancelled()) {
    std::printf("interrupted — best-so-far solution:\n");
  }
  std::printf("%s\n", solution->Summary().c_str());
  if (portfolio_stats.replicas > 1) {
    std::printf(
        "portfolio: replica %d of %d won (%d started, %d cancelled, "
        "%d tabu-skipped, %d threads)\n",
        portfolio_stats.winning_replica, portfolio_stats.replicas,
        portfolio_stats.replicas_started, portfolio_stats.replicas_cancelled,
        portfolio_stats.tabu_skipped, portfolio_stats.threads);
  }
  auto metrics = emp::ComputeMetrics(*areas, *solution);
  if (metrics.ok()) std::printf("%s\n", metrics->ToString().c_str());

  if (args.Has("out")) {
    emp::Status st = emp::WriteFile(
        args.Get("out"), emp::AssignmentToCsv(solution->region_of));
    if (!st.ok()) return Fail(st.ToString());
    std::printf("wrote %s\n", args.Get("out").c_str());
  }
  if (args.Has("geojson")) {
    auto geojson = emp::ToGeoJson(*areas, solution->region_of);
    if (!geojson.ok()) return Fail(geojson.status().ToString());
    emp::Status st = emp::WriteFile(args.Get("geojson"), *geojson);
    if (!st.ok()) return Fail(st.ToString());
    std::printf("wrote %s\n", args.Get("geojson").c_str());
  }
  if (args.Has("svg")) {
    emp::SvgOptions svg_options;
    svg_options.label_regions = args.Has("labels");
    auto svg = emp::RenderSvg(*areas, solution->region_of, svg_options);
    if (!svg.ok()) return Fail(svg.status().ToString());
    emp::Status st = emp::WriteFile(args.Get("svg"), *svg);
    if (!st.ok()) return Fail(st.ToString());
    std::printf("wrote %s\n", args.Get("svg").c_str());
  }
  if (args.Has("json")) {
    // Any solver: the canonical constraint set comes from the interface
    // (the baselines report their single-SUM query).
    auto json =
        emp::SolutionToJson(*areas, solver_impl.constraints(), *solution);
    if (!json.ok()) return Fail(json.status().ToString());
    emp::Status st = emp::WriteFile(args.Get("json"), *json);
    if (!st.ok()) return Fail(st.ToString());
    std::printf("wrote %s\n", args.Get("json").c_str());
  }
  return 0;
}

/// Flips the serve loop's stop flag; an atomic store, async-signal-safe.
std::atomic<bool> g_serve_stop{false};

void HandleServeSignal(int) { g_serve_stop.store(true); }

int CmdServe(const Args& args) {
  emp::obs::MetricRegistry metrics;

  emp::service::JobManager::Options manager_options;
  manager_options.workers = static_cast<int>(args.GetInt("workers", 2));
  manager_options.queue_capacity =
      static_cast<int>(args.GetInt("queue-capacity", 8));
  manager_options.metrics = &metrics;
  auto service = emp::service::SolveService::Create(manager_options);
  if (!service.ok()) return Fail(service.status().ToString());

  emp::obs::HttpServer::Options server_options;
  server_options.port = static_cast<int>(args.GetInt("port", 8080));
  server_options.metrics = &metrics;
  server_options.handler = (*service)->Handler();
  auto server = emp::obs::HttpServer::Start(server_options);
  if (!server.ok()) return Fail(server.status().ToString());
  if (args.Has("profile-hz")) {
    emp::Status st = emp::obs::PhaseProfiler::Start(
        static_cast<int>(args.GetInt("profile-hz", 97)));
    if (!st.ok()) return Fail(st.ToString());
    std::printf("profiler sampling at %lld hz (GET /profile)\n",
                static_cast<long long>(args.GetInt("profile-hz", 97)));
  }
  std::printf("serving solve api on 127.0.0.1:%d "
              "(POST /solve, GET /stats, GET /jobs, "
              "GET /jobs/<id>[/journal|/trace|/curve], "
              "POST /jobs/<id>/cancel; obs: /healthz /metrics "
              "/metrics.json /profile)\n",
              (*server)->port());
  std::printf("workers: %d, queue capacity: %d\n",
              (*service)->jobs().workers(),
              (*service)->jobs().queue_capacity());
  std::fflush(stdout);  // launchers poll this line for the bound port

  g_serve_stop.store(false);
  std::signal(SIGINT, HandleServeSignal);
  std::signal(SIGTERM, HandleServeSignal);
  while (!g_serve_stop.load()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  std::signal(SIGINT, SIG_DFL);
  std::signal(SIGTERM, SIG_DFL);

  // Stop the HTTP plane first — its handler calls into the service — then
  // drain the scheduler (cancels queued/running jobs, joins workers).
  if (args.Has("profile-hz")) emp::obs::PhaseProfiler::Stop();
  (*server)->Stop();
  (*service)->jobs().Shutdown();

  // Dump the per-job audit journals for post-mortem / CI artifacts.
  if (args.Has("journal-dir")) {
    const std::string dir = args.Get("journal-dir");
    for (const emp::service::JobSnapshot& job : (*service)->jobs().List()) {
      auto jsonl = (*service)->jobs().JournalJsonl(job.id);
      if (!jsonl.ok()) continue;
      const std::string path =
          dir + "/job-" + std::to_string(job.id) + ".jsonl";
      emp::Status st = emp::WriteFileAtomic(path, *jsonl);
      if (!st.ok()) return Fail(st.ToString());
      std::printf("wrote %s\n", path.c_str());
    }
  }
  std::printf("server stopped after %lld requests, %zu jobs\n",
              static_cast<long long>((*server)->requests_served()),
              (*service)->jobs().List().size());
  return 0;
}

int CmdExplore(const Args& args) {
  auto areas = LoadInput(args);
  if (!areas.ok()) return Fail(areas.status().ToString());
  auto constraints = emp::ParseConstraints(args.Get("query"));
  if (!constraints.ok()) return Fail(constraints.status().ToString());
  emp::RelaxOptions options;
  options.min_unassigned_gain = args.GetDouble("min-gain", 0.02);
  auto suggestions = emp::SuggestRelaxations(*areas, *constraints, options);
  if (!suggestions.ok()) return Fail(suggestions.status().ToString());
  if (suggestions->empty()) {
    std::printf("no helpful relaxations found — the query is already "
                "well-matched to the data\n");
    return 0;
  }
  for (const auto& s : *suggestions) {
    std::printf("%s\n", s.ToString().c_str());
  }
  return 0;
}

int CmdRender(const Args& args) {
  auto areas = LoadInput(args);
  if (!areas.ok()) return Fail(areas.status().ToString());
  std::vector<int32_t> region_of;
  if (args.Has("assignment")) {
    auto csv = emp::ReadFile(args.Get("assignment"));
    if (!csv.ok()) return Fail(csv.status().ToString());
    auto parsed = emp::AssignmentFromCsv(*csv, areas->num_areas());
    if (!parsed.ok()) return Fail(parsed.status().ToString());
    region_of = std::move(parsed).value();
  }
  emp::SvgOptions options;
  options.width = args.GetDouble("width", 1024);
  options.label_regions = args.Has("labels");
  auto svg = emp::RenderSvg(*areas, region_of, options);
  if (!svg.ok()) return Fail(svg.status().ToString());
  std::string out = args.Get("out", "map.svg");
  emp::Status st = emp::WriteFile(out, *svg);
  if (!st.ok()) return Fail(st.ToString());
  std::printf("wrote %s (%zu bytes)\n", out.c_str(), svg->size());
  return 0;
}

int CmdValidate(const Args& args) {
  auto areas = LoadInput(args);
  if (!areas.ok()) return Fail(areas.status().ToString());
  auto constraints = emp::ParseConstraints(args.Get("query"));
  if (!constraints.ok()) return Fail(constraints.status().ToString());
  auto csv = emp::ReadFile(args.Get("assignment"));
  if (!csv.ok()) return Fail(csv.status().ToString());
  auto assignment = emp::AssignmentFromCsv(*csv, areas->num_areas());
  if (!assignment.ok()) return Fail(assignment.status().ToString());
  auto report = emp::ValidateAssignment(*areas, *constraints, *assignment);
  if (!report.ok()) return Fail(report.status().ToString());
  std::printf("%s\n", report->ToString().c_str());
  return report->valid ? 0 : 3;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  const std::string command = argv[1];
  Args args(argc, argv);
  if (!args.error().empty()) return Fail(args.error());

  if (command == "synth") return CmdSynth(args);
  if (command == "info") return CmdInfo(args);
  if (command == "feasibility") return CmdFeasibility(args);
  if (command == "solve") return CmdSolve(args);
  if (command == "serve") return CmdServe(args);
  if (command == "pack") return CmdPack(args);
  if (command == "inspect") return CmdInspect(args);
  if (command == "validate") return CmdValidate(args);
  if (command == "render") return CmdRender(args);
  if (command == "explore") return CmdExplore(args);
  return Usage();
}
