#!/usr/bin/env bash
# Refreshes the committed perf-ratchet baselines in bench/baselines/.
#
# Run this ON THE CI RUNNER CLASS the ratchet compares on (or accept that
# absolute columns will drift — only ratio columns hard-fail, so a refresh
# from a different machine is safe but makes the warnings noisier). The
# baselines are captured under EMP_BENCH_SMOKE=1, the same gate CI runs
# with, so large catalog entries are stored as "-" (missing) and the
# ratchet skips them. Procedure:
#
#   tools/update_bench_baselines.sh [build-dir]
#   git add bench/baselines && git commit
#
# Then sanity-check the diff: a baseline refresh should accompany a PR
# that intentionally moved the numbers, never ride along silently.

set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"

if [[ ! -d "$BUILD_DIR" ]]; then
  cmake -S . -B "$BUILD_DIR" -DCMAKE_BUILD_TYPE=Release
fi
cmake --build "$BUILD_DIR" -j "$(nproc)" \
  --target micro_tabu micro_portfolio micro_region_stats micro_construction

mkdir -p bench/baselines
export EMP_BENCH_JSON_DIR="$PWD/bench/baselines"
export EMP_BENCH_SMOKE=1

for bin in micro_tabu micro_portfolio micro_region_stats \
           micro_construction; do
  "$BUILD_DIR/bench/$bin" --benchmark_min_time=0.01 >/dev/null
done

echo "Refreshed:"
ls -l bench/baselines/BENCH_*.json
