#!/usr/bin/env bash
# Configure, build, and run the test suite under sanitizers:
#   1. the full suite under ASan + UBSan (`asan-ubsan` preset, build-asan/)
#   2. the telemetry + threaded-construction tests under TSan
#      (`tsan` preset, build-tsan/)
#
# Usage: tools/run_sanitized_tests.sh [extra ctest args...]
# Any arguments are forwarded to the ASan/UBSan ctest invocation, e.g.
#   tools/run_sanitized_tests.sh -R fact_solver_test
set -euo pipefail

cd "$(dirname "$0")/.."

cmake --preset asan-ubsan
cmake --build --preset asan-ubsan -j "$(nproc)"
ctest --preset asan-ubsan -j "$(nproc)" "$@"

# TSan stage: focus on the tests that exercise shared-state concurrency —
# the metric registry, trace buffer, quantile sketches, the anytime-curve
# recorder, the profiler slot table, the construction worker pool, and
# the portfolio's replica pool + shared incumbent — plus the local-search
# engine tests, whose metric flushes touch the shared registry, the
# observability plane (seqlock progress board, HTTP server, run journal),
# and the solve service (job scheduler worker pool + concurrent HTTP
# submissions, per-job traces/curves, streaming latency stats).
cmake --preset tsan
cmake --build --preset tsan -j "$(nproc)" --target \
  obs_metrics_test quantile_test obs_trace_test obs_curve_test \
  obs_profiler_test obs_export_test obs_progress_test \
  obs_journal_test obs_http_test json_writer_test \
  thread_invariance_test fact_solver_test run_context_test \
  neighborhood_test tabu_golden_test portfolio_test \
  solver_registry_test service_stats_test service_test service_http_test
ctest --preset tsan -j "$(nproc)" \
  -R '^(obs_metrics_test|quantile_test|obs_trace_test|obs_curve_test|obs_profiler_test|obs_export_test|obs_progress_test|obs_journal_test|obs_http_test|json_writer_test|thread_invariance_test|fact_solver_test|run_context_test|neighborhood_test|tabu_golden_test|portfolio_test|solver_registry_test|service_stats_test|service_test|service_http_test)$'
