#!/usr/bin/env bash
# Configure, build, and run the full test suite under ASan + UBSan.
# Usage: tools/run_sanitized_tests.sh [extra ctest args...]
#
# Uses the `asan-ubsan` preset from CMakePresets.json (build-asan/ tree,
# benchmarks off). Any arguments are forwarded to ctest, e.g.
#   tools/run_sanitized_tests.sh -R fact_solver_test
set -euo pipefail

cd "$(dirname "$0")/.."

cmake --preset asan-ubsan
cmake --build --preset asan-ubsan -j "$(nproc)"
ctest --preset asan-ubsan -j "$(nproc)" "$@"
